package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestExecuteContextPreCancelled: a context cancelled before the call
// returns immediately with the context's error, before any work starts.
func TestExecuteContextPreCancelled(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := New(cat, Options{Granularity: PageLevel, Workers: 2})
	if _, err := eng.ExecuteContext(ctx, qs[2]); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestExecuteContextCancelMidRun: cancelling while the run is in flight
// unwinds the workers and controllers and surfaces the context error —
// the engine must not deadlock on its bounded channels.
func TestExecuteContextCancelMidRun(t *testing.T) {
	cat, qs := testDB(t, 0.1, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	eng := New(cat, Options{Granularity: TupleLevel, Workers: 2})

	done := make(chan error, 1)
	go func() {
		_, err := eng.ExecuteContext(ctx, qs[5])
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		// The run may legitimately win the race and finish before the
		// cancellation lands; anything else must be the context error.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled or nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled run never returned")
	}
}

// TestExecuteContextTimeout: a timeout that always fires mid-run stops
// the execution with context.DeadlineExceeded.
func TestExecuteContextTimeout(t *testing.T) {
	cat, qs := testDB(t, 0.1, 1000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // deadline certainly past
	eng := New(cat, Options{Granularity: PageLevel, Workers: 2})
	if _, err := eng.ExecuteContext(ctx, qs[2]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestExecuteContextBackground: a background context changes nothing —
// same result as plain Execute.
func TestExecuteContextBackground(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	eng := New(cat, Options{Granularity: PageLevel, Workers: 2})
	want, err := eng.Execute(qs[2])
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.ExecuteContext(context.Background(), qs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Relation.EqualMultiset(want.Relation) {
		t.Errorf("ExecuteContext %d tuples, Execute %d",
			got.Relation.Cardinality(), want.Relation.Cardinality())
	}
}

package core

import (
	"sync"
	"testing"
	"time"
)

func TestInfChanFIFO(t *testing.T) {
	c := newInfChan()
	defer c.Stop()
	for i := 0; i < 100; i++ {
		c.Send(event{kind: evPage, input: i})
	}
	for i := 0; i < 100; i++ {
		ev, ok := c.Recv()
		if !ok {
			t.Fatalf("Recv %d failed", i)
		}
		if ev.input != i {
			t.Fatalf("event %d arrived out of order (input=%d)", i, ev.input)
		}
	}
}

func TestInfChanUnboundedSendNeverBlocks(t *testing.T) {
	c := newInfChan()
	defer c.Stop()
	done := make(chan struct{})
	go func() {
		// Far more sends than any internal channel buffer, with no
		// receiver draining.
		for i := 0; i < 10_000; i++ {
			c.Send(event{input: i})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked without a receiver")
	}
	// Everything is still delivered in order.
	for i := 0; i < 10_000; i++ {
		ev, ok := c.Recv()
		if !ok || ev.input != i {
			t.Fatalf("event %d lost or reordered", i)
		}
	}
}

func TestInfChanStopReleasesBothSides(t *testing.T) {
	c := newInfChan()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			if _, ok := c.Recv(); !ok {
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			c.Send(event{input: i})
			if i > 1000 {
				return
			}
		}
	}()
	time.Sleep(time.Millisecond)
	c.Stop()
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not release blocked goroutines")
	}
}

func TestInfChanStopIdempotent(t *testing.T) {
	c := newInfChan()
	c.Stop()
	c.Stop() // must not panic
	if _, ok := c.Recv(); ok {
		t.Error("Recv succeeded after Stop")
	}
	c.Send(event{}) // must not block or panic
}

func TestInfChanConcurrentSenders(t *testing.T) {
	c := newInfChan()
	defer c.Stop()
	const senders, per = 8, 500
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Send(event{kind: evPage, input: s})
			}
		}(s)
	}
	counts := make([]int, senders)
	for i := 0; i < senders*per; i++ {
		ev, ok := c.Recv()
		if !ok {
			t.Fatalf("Recv %d failed", i)
		}
		counts[ev.input]++
	}
	wg.Wait()
	for s, n := range counts {
		if n != per {
			t.Errorf("sender %d: %d events, want %d", s, n, per)
		}
	}
}

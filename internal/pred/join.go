package pred

import (
	"fmt"

	"dfdbm/internal/relation"
)

// JoinCond is a conjunction of attribute comparisons between an outer
// (left) and an inner (right) relation — the "conditional cross product"
// condition of the paper's join operator. An equi-join has a single term
// with Op == EQ.
type JoinCond struct {
	Terms []JoinTerm
}

// JoinTerm compares one attribute of the outer relation with one of the
// inner relation.
type JoinTerm struct {
	Left  string
	Op    Op
	Right string
}

// Equi returns an equi-join condition on the named attributes.
func Equi(left, right string) JoinCond {
	return JoinCond{Terms: []JoinTerm{{Left: left, Op: EQ, Right: right}}}
}

// String renders the condition in surface syntax.
func (c JoinCond) String() string {
	s := ""
	for i, t := range c.Terms {
		if i > 0 {
			s += " and "
		}
		s += fmt.Sprintf("%s %s %s", t.Left, t.Op, t.Right)
	}
	return s
}

// LeftAttrs returns the outer-relation attributes the condition reads.
func (c JoinCond) LeftAttrs() []string {
	out := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		out[i] = t.Left
	}
	return out
}

// RightAttrs returns the inner-relation attributes the condition reads.
func (c JoinCond) RightAttrs() []string {
	out := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		out[i] = t.Right
	}
	return out
}

// Bind resolves the condition against the outer and inner schemas,
// returning an evaluator over pairs of encoded tuples.
func (c JoinCond) Bind(left, right *relation.Schema) (*BoundJoin, error) {
	if len(c.Terms) == 0 {
		return nil, fmt.Errorf("pred: join condition has no terms")
	}
	b := &BoundJoin{left: left, right: right}
	for _, t := range c.Terms {
		li, err := left.Index(t.Left)
		if err != nil {
			return nil, fmt.Errorf("pred: join outer side: %w", err)
		}
		ri, err := right.Index(t.Right)
		if err != nil {
			return nil, fmt.Errorf("pred: join inner side: %w", err)
		}
		if relation.KindFor(left.Attr(li).Type) != relation.KindFor(right.Attr(ri).Type) {
			return nil, fmt.Errorf("pred: join attributes %q and %q are not comparable", t.Left, t.Right)
		}
		b.terms = append(b.terms, boundJoinTerm{li: li, op: t.Op, ri: ri})
	}
	return b, nil
}

// BoundJoin is a join condition bound to an (outer, inner) schema pair.
type BoundJoin struct {
	left, right *relation.Schema
	terms       []boundJoinTerm
}

type boundJoinTerm struct {
	li, ri int
	op     Op
}

// EvalPair reports whether the encoded outer/inner tuple pair satisfies
// the condition.
func (b *BoundJoin) EvalPair(leftRaw, rightRaw []byte) (bool, error) {
	for _, t := range b.terms {
		lv, err := relation.DecodeValue(b.left, leftRaw, t.li)
		if err != nil {
			return false, err
		}
		rv, err := relation.DecodeValue(b.right, rightRaw, t.ri)
		if err != nil {
			return false, err
		}
		cmp, err := lv.Compare(rv)
		if err != nil {
			return false, err
		}
		if !t.op.holds(cmp) {
			return false, nil
		}
	}
	return true, nil
}

// FirstEqui returns the bound attribute indexes of the first EQ term, if
// any. Sort-merge join uses it to pick its sort keys.
func (b *BoundJoin) FirstEqui() (leftIdx, rightIdx int, ok bool) {
	for _, t := range b.terms {
		if t.op == EQ {
			return t.li, t.ri, true
		}
	}
	return 0, 0, false
}

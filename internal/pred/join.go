package pred

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"dfdbm/internal/relation"
)

// JoinCond is a conjunction of attribute comparisons between an outer
// (left) and an inner (right) relation — the "conditional cross product"
// condition of the paper's join operator. An equi-join has a single term
// with Op == EQ.
type JoinCond struct {
	Terms []JoinTerm
}

// JoinTerm compares one attribute of the outer relation with one of the
// inner relation.
type JoinTerm struct {
	Left  string
	Op    Op
	Right string
}

// Equi returns an equi-join condition on the named attributes.
func Equi(left, right string) JoinCond {
	return JoinCond{Terms: []JoinTerm{{Left: left, Op: EQ, Right: right}}}
}

// String renders the condition in surface syntax.
func (c JoinCond) String() string {
	s := ""
	for i, t := range c.Terms {
		if i > 0 {
			s += " and "
		}
		s += fmt.Sprintf("%s %s %s", t.Left, t.Op, t.Right)
	}
	return s
}

// LeftAttrs returns the outer-relation attributes the condition reads.
func (c JoinCond) LeftAttrs() []string {
	out := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		out[i] = t.Left
	}
	return out
}

// RightAttrs returns the inner-relation attributes the condition reads.
func (c JoinCond) RightAttrs() []string {
	out := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		out[i] = t.Right
	}
	return out
}

// Bind resolves the condition against the outer and inner schemas,
// returning an evaluator over pairs of encoded tuples.
func (c JoinCond) Bind(left, right *relation.Schema) (*BoundJoin, error) {
	if len(c.Terms) == 0 {
		return nil, fmt.Errorf("pred: join condition has no terms")
	}
	b := &BoundJoin{left: left, right: right}
	for _, t := range c.Terms {
		li, err := left.Index(t.Left)
		if err != nil {
			return nil, fmt.Errorf("pred: join outer side: %w", err)
		}
		ri, err := right.Index(t.Right)
		if err != nil {
			return nil, fmt.Errorf("pred: join inner side: %w", err)
		}
		kind := relation.KindFor(left.Attr(li).Type)
		if kind != relation.KindFor(right.Attr(ri).Type) {
			return nil, fmt.Errorf("pred: join attributes %q and %q are not comparable", t.Left, t.Right)
		}
		b.terms = append(b.terms, boundJoinTerm{
			li: li, op: t.Op, ri: ri,
			kind:   kind,
			lOff:   left.Offset(li),
			lWidth: left.Attr(li).ByteWidth(),
			rOff:   right.Offset(ri),
			rWidth: right.Attr(ri).ByteWidth(),
		})
	}
	return b, nil
}

// BoundJoin is a join condition bound to an (outer, inner) schema pair.
type BoundJoin struct {
	left, right *relation.Schema
	terms       []boundJoinTerm
}

// boundJoinTerm carries the precomputed byte layout of both sides so
// that EvalPair can compare encoded attributes in place — no Value
// boxing, no per-tuple allocation.
type boundJoinTerm struct {
	li, ri       int
	op           Op
	kind         relation.Kind
	lOff, lWidth int
	rOff, rWidth int
}

// EvalPair reports whether the encoded outer/inner tuple pair satisfies
// the condition. It compares the raw attribute bytes directly, with the
// same semantics as DecodeValue + Value.Compare.
func (b *BoundJoin) EvalPair(leftRaw, rightRaw []byte) (bool, error) {
	for i := range b.terms {
		t := &b.terms[i]
		if t.lOff+t.lWidth > len(leftRaw) {
			return false, fmt.Errorf("pred: raw outer tuple too short for attribute %q", b.left.Attr(t.li).Name)
		}
		if t.rOff+t.rWidth > len(rightRaw) {
			return false, fmt.Errorf("pred: raw inner tuple too short for attribute %q", b.right.Attr(t.ri).Name)
		}
		var cmp int
		switch t.kind {
		case relation.KindInt:
			cmp = compareInt(decodeInt(leftRaw[t.lOff:], t.lWidth), decodeInt(rightRaw[t.rOff:], t.rWidth))
		case relation.KindFloat:
			// Float ordering matches Value.Compare: NaN compares
			// neither less nor greater, so it lands on cmp == 0.
			lf := math.Float64frombits(binary.LittleEndian.Uint64(leftRaw[t.lOff:]))
			rf := math.Float64frombits(binary.LittleEndian.Uint64(rightRaw[t.rOff:]))
			switch {
			case lf < rf:
				cmp = -1
			case lf > rf:
				cmp = 1
			default:
				cmp = 0
			}
		case relation.KindString:
			cmp = bytes.Compare(trimNULs(leftRaw[t.lOff:t.lOff+t.lWidth]), trimNULs(rightRaw[t.rOff:t.rOff+t.rWidth]))
		default:
			return false, fmt.Errorf("pred: unknown join term kind %d", t.kind)
		}
		if !t.op.holds(cmp) {
			return false, nil
		}
	}
	return true, nil
}

// decodeInt reads a little-endian signed integer of width 4 or 8 —
// exactly the encodings of the Int32 and Int64 storage types.
func decodeInt(raw []byte, width int) int64 {
	if width == 4 {
		return int64(int32(binary.LittleEndian.Uint32(raw)))
	}
	return int64(binary.LittleEndian.Uint64(raw))
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// trimNULs strips the NUL padding the fixed-width string encoding
// appends, yielding the logical string bytes without allocating.
func trimNULs(b []byte) []byte {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return b[:end]
}

// HashKey describes the byte layout of a join's hash key: the first
// equality term whose raw encoding is canonicalizable to a value-equal
// byte key. Int32/Int64 keys canonicalize to a little-endian int64;
// string keys canonicalize by trimming NUL padding. Float terms are
// excluded — their value equality (-0 == +0, and Compare's NaN == NaN)
// is not byte equality.
type HashKey struct {
	Kind         relation.Kind
	LOff, LWidth int
	ROff, RWidth int
}

// HashKey returns the layout of the first hashable equality term, if
// any. A hash kernel may bucket on this key and must re-verify
// candidates with EvalPair (which also applies residual terms).
func (b *BoundJoin) HashKey() (HashKey, bool) {
	for i := range b.terms {
		t := &b.terms[i]
		if t.op != EQ {
			continue
		}
		if t.kind != relation.KindInt && t.kind != relation.KindString {
			continue
		}
		return HashKey{
			Kind: t.kind,
			LOff: t.lOff, LWidth: t.lWidth,
			ROff: t.rOff, RWidth: t.rWidth,
		}, true
	}
	return HashKey{}, false
}

// AppendLeftKey appends the canonical key bytes of the outer tuple's
// join attribute to dst: equal values always produce equal key bytes,
// even across Int32/Int64 widths or string widths.
func (k HashKey) AppendLeftKey(dst, raw []byte) []byte {
	return k.appendKey(dst, raw, k.LOff, k.LWidth)
}

// AppendRightKey is AppendLeftKey for the inner tuple.
func (k HashKey) AppendRightKey(dst, raw []byte) []byte {
	return k.appendKey(dst, raw, k.ROff, k.RWidth)
}

func (k HashKey) appendKey(dst, raw []byte, off, width int) []byte {
	if k.Kind == relation.KindInt {
		return binary.LittleEndian.AppendUint64(dst, uint64(decodeInt(raw[off:], width)))
	}
	return append(dst, trimNULs(raw[off:off+width])...)
}

// LeftKeyUint64 returns the canonical 64-bit key of the outer tuple's
// hash attribute without materializing key bytes: for int keys it is
// the sign-extended value itself (so equal keys are exactly equal
// values); for string keys it is a 64-bit FNV-1a hash of the
// NUL-trimmed bytes (equal values produce equal keys, but a key match
// must still be re-verified with EvalPair).
func (k HashKey) LeftKeyUint64(raw []byte) uint64 {
	return k.keyUint64(raw, k.LOff, k.LWidth)
}

// RightKeyUint64 is LeftKeyUint64 for the inner tuple.
func (k HashKey) RightKeyUint64(raw []byte) uint64 {
	return k.keyUint64(raw, k.ROff, k.RWidth)
}

func (k HashKey) keyUint64(raw []byte, off, width int) uint64 {
	if k.Kind == relation.KindInt {
		return uint64(decodeInt(raw[off:], width))
	}
	// Inline FNV-1a 64 over the trimmed string bytes: no allocation.
	h := uint64(14695981039346656037)
	b := trimNULs(raw[off : off+width])
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// SingleIntEqui reports whether the condition is exactly one equality
// term over integer attributes. For such conditions the canonical
// uint64 key IS the join value, so a hash kernel may treat key equality
// as a confirmed match and skip EvalPair re-verification entirely.
func (b *BoundJoin) SingleIntEqui() bool {
	return len(b.terms) == 1 && b.terms[0].op == EQ && b.terms[0].kind == relation.KindInt
}

// FirstEqui returns the bound attribute indexes of the first EQ term, if
// any. Sort-merge join uses it to pick its sort keys.
func (b *BoundJoin) FirstEqui() (leftIdx, rightIdx int, ok bool) {
	for _, t := range b.terms {
		if t.op == EQ {
			return t.li, t.ri, true
		}
	}
	return 0, 0, false
}

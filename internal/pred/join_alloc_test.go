package pred

import (
	"testing"

	"dfdbm/internal/relation"
)

// TestEvalPairNoAllocs pins the hot-path property the engines rely on:
// evaluating a bound join condition over raw tuples — int, float, and
// string terms — allocates nothing per pair.
func TestEvalPairNoAllocs(t *testing.T) {
	left, err := relation.NewSchema(
		relation.Attr{Name: "a", Type: relation.Int32},
		relation.Attr{Name: "f", Type: relation.Float64},
		relation.Attr{Name: "s", Type: relation.String, Width: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	right, err := relation.NewSchema(
		relation.Attr{Name: "b", Type: relation.Int64},
		relation.Attr{Name: "g", Type: relation.Float64},
		relation.Attr{Name: "u", Type: relation.String, Width: 12},
	)
	if err != nil {
		t.Fatal(err)
	}
	cond := JoinCond{Terms: []JoinTerm{
		{Left: "a", Op: EQ, Right: "b"},
		{Left: "f", Op: LE, Right: "g"},
		{Left: "s", Op: NE, Right: "u"},
	}}
	bound, err := cond.Bind(left, right)
	if err != nil {
		t.Fatal(err)
	}
	lraw, err := relation.EncodeTuple(nil, left, relation.Tuple{
		relation.IntVal(42), relation.FloatVal(1.5), relation.StringVal("abc"),
	})
	if err != nil {
		t.Fatal(err)
	}
	rraw, err := relation.EncodeTuple(nil, right, relation.Tuple{
		relation.IntVal(42), relation.FloatVal(2.5), relation.StringVal("xyz"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := bound.EvalPair(lraw, rraw)
	if err != nil || !ok {
		t.Fatalf("EvalPair = %v, %v; want match", ok, err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := bound.EvalPair(lraw, rraw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EvalPair allocates %v times per pair, want 0", allocs)
	}
}

// TestHashKeyCanonical checks the canonical key bytes that back the
// hash kernel: equal values produce equal keys across storage widths,
// and conditions without a hashable term report none.
func TestHashKeyCanonical(t *testing.T) {
	left, err := relation.NewSchema(
		relation.Attr{Name: "a", Type: relation.Int32},
		relation.Attr{Name: "s", Type: relation.String, Width: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	right, err := relation.NewSchema(
		relation.Attr{Name: "b", Type: relation.Int64},
		relation.Attr{Name: "u", Type: relation.String, Width: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Equi("a", "b").Bind(left, right)
	if err != nil {
		t.Fatal(err)
	}
	key, ok := bound.HashKey()
	if !ok {
		t.Fatal("int equi-join has no hash key")
	}
	lraw, _ := relation.EncodeTuple(nil, left, relation.Tuple{relation.IntVal(-7), relation.StringVal("ab")})
	rraw, _ := relation.EncodeTuple(nil, right, relation.Tuple{relation.IntVal(-7), relation.StringVal("ab")})
	lk := key.AppendLeftKey(nil, lraw)
	rk := key.AppendRightKey(nil, rraw)
	if string(lk) != string(rk) {
		t.Errorf("int32/int64 keys differ: %x vs %x", lk, rk)
	}

	sb, err := JoinCond{Terms: []JoinTerm{{Left: "s", Op: EQ, Right: "u"}}}.Bind(left, right)
	if err != nil {
		t.Fatal(err)
	}
	skey, ok := sb.HashKey()
	if !ok {
		t.Fatal("string equi-join has no hash key")
	}
	lk = skey.AppendLeftKey(nil, lraw)
	rk = skey.AppendRightKey(nil, rraw)
	if string(lk) != string(rk) {
		t.Errorf("string keys differ across widths: %q vs %q", lk, rk)
	}

	nb, err := JoinCond{Terms: []JoinTerm{{Left: "a", Op: LT, Right: "b"}}}.Bind(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nb.HashKey(); ok {
		t.Error("non-equi condition reported a hash key")
	}
}

package pred

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"dfdbm/internal/relation"
)

// Batched predicate evaluation: a bound predicate tree is compiled into
// a program over selection bitmaps. Instead of one Eval interface call
// per tuple, each compiled leaf decodes its attribute at a precomputed
// offset across the whole page (a gather into a column vector) and sets
// one bit per satisfied tuple; connectives combine the bitmaps with
// word-wide AND/OR/NOT. Any Bound implementation the compiler does not
// recognize falls back to per-tuple Eval for that subtree, so batched
// evaluation is always available and always agrees with the scalar
// path bit for bit.

// SelWords returns the number of 64-bit words a selection bitmap needs
// to cover n tuples.
func SelWords(n int) int { return (n + 63) / 64 }

// BatchPred is a predicate compiled for batched evaluation over the
// contiguous tuple bytes of one page. It holds mutable column and
// bitmap scratch, so a BatchPred must not be used from more than one
// goroutine at a time; compile one per worker.
type BatchPred struct {
	root   batchNode
	vector bool
}

// CompileBatch compiles a bound predicate for batched evaluation. It
// never fails: unrecognized Bound implementations are wrapped in a
// per-tuple fallback node.
func CompileBatch(b Bound) *BatchPred {
	bp := &BatchPred{vector: true}
	bp.root = compileBatch(b, &bp.vector)
	return bp
}

// Vectorized reports whether the whole tree compiled to vector loops;
// false means at least one subtree runs the scalar Eval fallback.
func (bp *BatchPred) Vectorized() bool { return bp.vector }

// EvalBatch fills sel with the selection bitmap of the predicate over
// data, which holds n contiguous tuples of tupleLen bytes: bit i is set
// iff tuple i satisfies the predicate. sel must be at least SelWords(n)
// words long; bits at positions >= n are left zero.
func (bp *BatchPred) EvalBatch(data []byte, tupleLen, n int, sel []uint64) error {
	if n == 0 {
		return nil
	}
	return bp.root.eval(data, tupleLen, n, sel[:SelWords(n)])
}

// batchNode computes the complete selection bitmap of one predicate
// subtree. out arrives with unspecified contents and exactly
// SelWords(n) words; on return every bit < n reflects the subtree and
// every bit >= n is zero.
type batchNode interface {
	eval(data []byte, tupleLen, n int, out []uint64) error
}

func compileBatch(b Bound, vector *bool) batchNode {
	switch t := b.(type) {
	case boundCompare:
		a := t.schema.Attr(t.attr)
		off, width := t.schema.Offset(t.attr), a.ByteWidth()
		switch relation.KindFor(a.Type) {
		case relation.KindInt:
			return &batchCmpInt{off: off, width: width, op: t.op, k: t.konst.Int}
		case relation.KindFloat:
			return &batchCmpFloat{off: off, op: t.op, k: t.konst.Flt}
		case relation.KindString:
			return &batchCmpString{off: off, width: width, op: t.op, k: []byte(t.konst.Str)}
		}
	case boundCompareAttrs:
		aa, ab := t.schema.Attr(t.a), t.schema.Attr(t.b)
		node := &batchCmpAttrs{
			kind: relation.KindFor(aa.Type),
			op:   t.op,
			aOff: t.schema.Offset(t.a), aWidth: aa.ByteWidth(),
			bOff: t.schema.Offset(t.b), bWidth: ab.ByteWidth(),
		}
		return node
	case boundAnd:
		kids := make([]batchNode, len(t))
		for i, k := range t {
			kids[i] = compileBatch(k, vector)
		}
		return &batchAnd{kids: kids}
	case boundOr:
		kids := make([]batchNode, len(t))
		for i, k := range t {
			kids[i] = compileBatch(k, vector)
		}
		return &batchOr{kids: kids}
	case boundNot:
		return &batchNot{kid: compileBatch(t.kid, vector)}
	case boundConst:
		return batchConst(t)
	}
	*vector = false
	return &batchFallback{b: b}
}

// bitmap helpers

func zeroSel(s []uint64) {
	for i := range s {
		s[i] = 0
	}
}

func maskTail(s []uint64, n int) {
	if r := n & 63; r != 0 && len(s) > 0 {
		s[len(s)-1] &= (1 << uint(r)) - 1
	}
}

func sizeSel(s []uint64, n int) []uint64 {
	if w := SelWords(n); cap(s) < w {
		return make([]uint64, w)
	} else {
		return s[:w]
	}
}

// batchCmpInt compares an Int32/Int64 attribute against a constant:
// gather the column into an int64 vector, then one branch-predictable
// compare loop specialized by operator.
type batchCmpInt struct {
	off, width int
	op         Op
	k          int64
	col        []int64
}

func (b *batchCmpInt) eval(data []byte, tupleLen, n int, out []uint64) error {
	if b.off+b.width > tupleLen {
		return fmt.Errorf("pred: %d-byte tuple too short for batched compare at offset %d width %d", tupleLen, b.off, b.width)
	}
	if cap(b.col) < n {
		b.col = make([]int64, n)
	}
	col := b.col[:n]
	p := b.off
	if b.width == 8 {
		for i := 0; i < n; i++ {
			col[i] = int64(binary.LittleEndian.Uint64(data[p:]))
			p += tupleLen
		}
	} else {
		for i := 0; i < n; i++ {
			col[i] = int64(int32(binary.LittleEndian.Uint32(data[p:])))
			p += tupleLen
		}
	}
	zeroSel(out)
	k := b.k
	switch b.op {
	case EQ:
		for i, v := range col {
			if v == k {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case NE:
		for i, v := range col {
			if v != k {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case LT:
		for i, v := range col {
			if v < k {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case LE:
		for i, v := range col {
			if v <= k {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case GT:
		for i, v := range col {
			if v > k {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case GE:
		for i, v := range col {
			if v >= k {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	default:
		return fmt.Errorf("pred: unknown comparison operator %v", b.op)
	}
	return nil
}

// batchCmpFloat matches Value.Compare's float ordering exactly: NaN
// compares neither less nor greater than anything, so it lands on
// cmp == 0 — EQ/LE/GE hold, NE/LT/GT do not.
type batchCmpFloat struct {
	off int
	op  Op
	k   float64
	col []float64
}

func (b *batchCmpFloat) eval(data []byte, tupleLen, n int, out []uint64) error {
	if b.off+8 > tupleLen {
		return fmt.Errorf("pred: %d-byte tuple too short for batched compare at offset %d width 8", tupleLen, b.off)
	}
	if cap(b.col) < n {
		b.col = make([]float64, n)
	}
	col := b.col[:n]
	p := b.off
	for i := 0; i < n; i++ {
		col[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[p:]))
		p += tupleLen
	}
	zeroSel(out)
	k := b.k
	switch b.op {
	case EQ:
		for i, v := range col {
			if !(v < k) && !(v > k) {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case NE:
		for i, v := range col {
			if v < k || v > k {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case LT:
		for i, v := range col {
			if v < k {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case LE:
		for i, v := range col {
			if !(v > k) {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case GT:
		for i, v := range col {
			if v > k {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case GE:
		for i, v := range col {
			if !(v < k) {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	default:
		return fmt.Errorf("pred: unknown comparison operator %v", b.op)
	}
	return nil
}

// batchCmpString compares a fixed-width string attribute against a
// constant in place — NUL padding trimmed exactly as DecodeValue does.
type batchCmpString struct {
	off, width int
	op         Op
	k          []byte
}

func (b *batchCmpString) eval(data []byte, tupleLen, n int, out []uint64) error {
	if b.off+b.width > tupleLen {
		return fmt.Errorf("pred: %d-byte tuple too short for batched compare at offset %d width %d", tupleLen, b.off, b.width)
	}
	zeroSel(out)
	p := b.off
	for i := 0; i < n; i++ {
		if b.op.holds(bytes.Compare(trimNULs(data[p:p+b.width]), b.k)) {
			out[i>>6] |= 1 << uint(i&63)
		}
		p += tupleLen
	}
	return nil
}

// batchCmpAttrs compares two attributes of the same tuple.
type batchCmpAttrs struct {
	kind         relation.Kind
	op           Op
	aOff, aWidth int
	bOff, bWidth int
	colA, colB   []int64
	fColA, fColB []float64
}

func (b *batchCmpAttrs) eval(data []byte, tupleLen, n int, out []uint64) error {
	if b.aOff+b.aWidth > tupleLen || b.bOff+b.bWidth > tupleLen {
		return fmt.Errorf("pred: %d-byte tuple too short for batched attribute compare", tupleLen)
	}
	zeroSel(out)
	switch b.kind {
	case relation.KindInt:
		if cap(b.colA) < n {
			b.colA = make([]int64, n)
			b.colB = make([]int64, n)
		}
		ca, cb := b.colA[:n], b.colB[:n]
		gatherInt(data, tupleLen, n, b.aOff, b.aWidth, ca)
		gatherInt(data, tupleLen, n, b.bOff, b.bWidth, cb)
		switch b.op {
		case EQ:
			for i, v := range ca {
				if v == cb[i] {
					out[i>>6] |= 1 << uint(i&63)
				}
			}
		case NE:
			for i, v := range ca {
				if v != cb[i] {
					out[i>>6] |= 1 << uint(i&63)
				}
			}
		case LT:
			for i, v := range ca {
				if v < cb[i] {
					out[i>>6] |= 1 << uint(i&63)
				}
			}
		case LE:
			for i, v := range ca {
				if v <= cb[i] {
					out[i>>6] |= 1 << uint(i&63)
				}
			}
		case GT:
			for i, v := range ca {
				if v > cb[i] {
					out[i>>6] |= 1 << uint(i&63)
				}
			}
		case GE:
			for i, v := range ca {
				if v >= cb[i] {
					out[i>>6] |= 1 << uint(i&63)
				}
			}
		default:
			return fmt.Errorf("pred: unknown comparison operator %v", b.op)
		}
	case relation.KindFloat:
		if cap(b.fColA) < n {
			b.fColA = make([]float64, n)
			b.fColB = make([]float64, n)
		}
		ca, cb := b.fColA[:n], b.fColB[:n]
		gatherFloat(data, tupleLen, n, b.aOff, ca)
		gatherFloat(data, tupleLen, n, b.bOff, cb)
		for i, v := range ca {
			w := cb[i]
			cmp := 0
			switch {
			case v < w:
				cmp = -1
			case v > w:
				cmp = 1
			}
			if b.op.holds(cmp) {
				out[i>>6] |= 1 << uint(i&63)
			}
		}
	case relation.KindString:
		pa, pb := b.aOff, b.bOff
		for i := 0; i < n; i++ {
			cmp := bytes.Compare(trimNULs(data[pa:pa+b.aWidth]), trimNULs(data[pb:pb+b.bWidth]))
			if b.op.holds(cmp) {
				out[i>>6] |= 1 << uint(i&63)
			}
			pa += tupleLen
			pb += tupleLen
		}
	default:
		return fmt.Errorf("pred: unknown attribute kind %d", b.kind)
	}
	return nil
}

func gatherInt(data []byte, tupleLen, n, off, width int, col []int64) {
	p := off
	if width == 8 {
		for i := 0; i < n; i++ {
			col[i] = int64(binary.LittleEndian.Uint64(data[p:]))
			p += tupleLen
		}
	} else {
		for i := 0; i < n; i++ {
			col[i] = int64(int32(binary.LittleEndian.Uint32(data[p:])))
			p += tupleLen
		}
	}
}

func gatherFloat(data []byte, tupleLen, n, off int, col []float64) {
	p := off
	for i := 0; i < n; i++ {
		col[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[p:]))
		p += tupleLen
	}
}

type batchAnd struct {
	kids    []batchNode
	scratch []uint64
}

func (b *batchAnd) eval(data []byte, tupleLen, n int, out []uint64) error {
	if err := b.kids[0].eval(data, tupleLen, n, out); err != nil {
		return err
	}
	if len(b.kids) > 1 {
		b.scratch = sizeSel(b.scratch, n)
		for _, k := range b.kids[1:] {
			if err := k.eval(data, tupleLen, n, b.scratch); err != nil {
				return err
			}
			for i := range out {
				out[i] &= b.scratch[i]
			}
		}
	}
	return nil
}

type batchOr struct {
	kids    []batchNode
	scratch []uint64
}

func (b *batchOr) eval(data []byte, tupleLen, n int, out []uint64) error {
	if err := b.kids[0].eval(data, tupleLen, n, out); err != nil {
		return err
	}
	if len(b.kids) > 1 {
		b.scratch = sizeSel(b.scratch, n)
		for _, k := range b.kids[1:] {
			if err := k.eval(data, tupleLen, n, b.scratch); err != nil {
				return err
			}
			for i := range out {
				out[i] |= b.scratch[i]
			}
		}
	}
	return nil
}

type batchNot struct{ kid batchNode }

func (b *batchNot) eval(data []byte, tupleLen, n int, out []uint64) error {
	if err := b.kid.eval(data, tupleLen, n, out); err != nil {
		return err
	}
	for i := range out {
		out[i] = ^out[i]
	}
	maskTail(out, n)
	return nil
}

type batchConst bool

func (b batchConst) eval(_ []byte, _, n int, out []uint64) error {
	if !b {
		zeroSel(out)
		return nil
	}
	for i := range out {
		out[i] = ^uint64(0)
	}
	maskTail(out, n)
	return nil
}

// batchFallback runs an unrecognized Bound per tuple — the scalar
// escape hatch that keeps batched evaluation total over the Bound
// interface.
type batchFallback struct{ b Bound }

func (b *batchFallback) eval(data []byte, tupleLen, n int, out []uint64) error {
	zeroSel(out)
	p := 0
	for i := 0; i < n; i++ {
		ok, err := b.b.Eval(data[p : p+tupleLen])
		if err != nil {
			return err
		}
		if ok {
			out[i>>6] |= 1 << uint(i&63)
		}
		p += tupleLen
	}
	return nil
}

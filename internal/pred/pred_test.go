package pred

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dfdbm/internal/relation"
)

func testSchema(t testing.TB) *relation.Schema {
	t.Helper()
	return relation.MustSchema(
		relation.Attr{Name: "id", Type: relation.Int32},
		relation.Attr{Name: "qty", Type: relation.Int32},
		relation.Attr{Name: "price", Type: relation.Float64},
		relation.Attr{Name: "tag", Type: relation.String, Width: 8},
	)
}

func encode(t testing.TB, s *relation.Schema, tup relation.Tuple) []byte {
	t.Helper()
	raw, err := relation.EncodeTuple(nil, s, tup)
	if err != nil {
		t.Fatalf("EncodeTuple: %v", err)
	}
	return raw
}

func TestCompareOps(t *testing.T) {
	s := testSchema(t)
	raw := encode(t, s, relation.Tuple{
		relation.IntVal(10), relation.IntVal(3), relation.FloatVal(2.5), relation.StringVal("abc"),
	})
	cases := []struct {
		p    Pred
		want bool
	}{
		{Compare{"id", EQ, relation.IntVal(10)}, true},
		{Compare{"id", EQ, relation.IntVal(11)}, false},
		{Compare{"id", NE, relation.IntVal(11)}, true},
		{Compare{"id", LT, relation.IntVal(11)}, true},
		{Compare{"id", LE, relation.IntVal(10)}, true},
		{Compare{"id", GT, relation.IntVal(10)}, false},
		{Compare{"id", GE, relation.IntVal(10)}, true},
		{Compare{"price", GT, relation.FloatVal(2.0)}, true},
		{Compare{"price", LT, relation.FloatVal(2.0)}, false},
		{Compare{"tag", EQ, relation.StringVal("abc")}, true},
		{Compare{"tag", GE, relation.StringVal("abd")}, false},
	}
	for _, c := range cases {
		b, err := c.p.Bind(s)
		if err != nil {
			t.Fatalf("Bind(%s): %v", c.p, err)
		}
		got, err := b.Eval(raw)
		if err != nil {
			t.Fatalf("Eval(%s): %v", c.p, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCompareAttrs(t *testing.T) {
	s := testSchema(t)
	raw := encode(t, s, relation.Tuple{
		relation.IntVal(10), relation.IntVal(10), relation.FloatVal(0), relation.StringVal(""),
	})
	b, err := CompareAttrs{"id", EQ, "qty"}.Bind(s)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if ok, err := b.Eval(raw); err != nil || !ok {
		t.Errorf("id = qty gave %v, %v; want true", ok, err)
	}
	b2, err := CompareAttrs{"id", LT, "qty"}.Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := b2.Eval(raw); ok {
		t.Error("id < qty gave true for equal values")
	}
}

func TestConnectives(t *testing.T) {
	s := testSchema(t)
	raw := encode(t, s, relation.Tuple{
		relation.IntVal(5), relation.IntVal(7), relation.FloatVal(1), relation.StringVal("t"),
	})
	idIs5 := Compare{"id", EQ, relation.IntVal(5)}
	qtyIs9 := Compare{"qty", EQ, relation.IntVal(9)}
	cases := []struct {
		p    Pred
		want bool
	}{
		{Conj(idIs5, qtyIs9), false},
		{Conj(idIs5, Compare{"qty", EQ, relation.IntVal(7)}), true},
		{Disj(idIs5, qtyIs9), true},
		{Disj(qtyIs9, qtyIs9), false},
		{Not{idIs5}, false},
		{Not{qtyIs9}, true},
		{TruePred, true},
		{FalsePred, false},
		{Conj(TruePred, Not{FalsePred}), true},
	}
	for _, c := range cases {
		b, err := c.p.Bind(s)
		if err != nil {
			t.Fatalf("Bind(%s): %v", c.p, err)
		}
		got, err := b.Eval(raw)
		if err != nil {
			t.Fatalf("Eval(%s): %v", c.p, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBindErrors(t *testing.T) {
	s := testSchema(t)
	cases := []Pred{
		Compare{"missing", EQ, relation.IntVal(1)},
		Compare{"id", EQ, relation.StringVal("wrong kind")},
		CompareAttrs{"missing", EQ, "id"},
		CompareAttrs{"id", EQ, "missing"},
		CompareAttrs{"id", EQ, "tag"},
		And{},
		Or{},
		Not{Compare{"missing", EQ, relation.IntVal(1)}},
	}
	for _, p := range cases {
		if _, err := p.Bind(s); err == nil {
			t.Errorf("Bind(%s) succeeded, want error", p)
		}
	}
}

func TestAttrsCollection(t *testing.T) {
	p := Conj(
		Compare{"a", EQ, relation.IntVal(1)},
		Disj(CompareAttrs{"b", LT, "c"}, Not{Compare{"d", NE, relation.IntVal(2)}}),
	)
	got := p.Attrs(nil)
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	if len(got) != 4 {
		t.Fatalf("Attrs = %v, want 4 names", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("unexpected attr %q", n)
		}
	}
}

func TestPredString(t *testing.T) {
	p := Conj(
		Compare{"id", GE, relation.IntVal(3)},
		Compare{"tag", EQ, relation.StringVal("x")},
	)
	if got := p.String(); got != `(id >= 3) and (tag = "x")` {
		t.Errorf("String = %q", got)
	}
	if got := (Not{TruePred}).String(); got != "not (true)" {
		t.Errorf("Not.String = %q", got)
	}
}

func TestParseOp(t *testing.T) {
	good := map[string]Op{
		"=": EQ, "==": EQ, "!=": NE, "<>": NE, "<": LT, "<=": LE, ">": GT, ">=": GE,
	}
	for s, want := range good {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseOp("~"); err == nil {
		t.Error("ParseOp(~) succeeded")
	}
}

func TestJoinCondBindAndEval(t *testing.T) {
	left := relation.MustSchema(
		relation.Attr{Name: "id", Type: relation.Int32},
		relation.Attr{Name: "x", Type: relation.Int32},
	)
	right := relation.MustSchema(
		relation.Attr{Name: "fk", Type: relation.Int32},
		relation.Attr{Name: "y", Type: relation.Int32},
	)
	cond := Equi("id", "fk")
	b, err := cond.Bind(left, right)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	lraw, _ := relation.EncodeTuple(nil, left, relation.Tuple{relation.IntVal(7), relation.IntVal(1)})
	r1, _ := relation.EncodeTuple(nil, right, relation.Tuple{relation.IntVal(7), relation.IntVal(2)})
	r2, _ := relation.EncodeTuple(nil, right, relation.Tuple{relation.IntVal(8), relation.IntVal(2)})
	if ok, err := b.EvalPair(lraw, r1); err != nil || !ok {
		t.Errorf("matching pair gave %v, %v", ok, err)
	}
	if ok, err := b.EvalPair(lraw, r2); err != nil || ok {
		t.Errorf("non-matching pair gave %v, %v", ok, err)
	}
	li, ri, ok := b.FirstEqui()
	if !ok || li != 0 || ri != 0 {
		t.Errorf("FirstEqui = %d, %d, %v", li, ri, ok)
	}
}

func TestJoinCondMultiTerm(t *testing.T) {
	left := relation.MustSchema(
		relation.Attr{Name: "a", Type: relation.Int32},
		relation.Attr{Name: "b", Type: relation.Int32},
	)
	right := relation.MustSchema(
		relation.Attr{Name: "c", Type: relation.Int32},
		relation.Attr{Name: "d", Type: relation.Int32},
	)
	cond := JoinCond{Terms: []JoinTerm{
		{Left: "a", Op: EQ, Right: "c"},
		{Left: "b", Op: LT, Right: "d"},
	}}
	b, err := cond.Bind(left, right)
	if err != nil {
		t.Fatal(err)
	}
	lraw, _ := relation.EncodeTuple(nil, left, relation.Tuple{relation.IntVal(1), relation.IntVal(5)})
	rYes, _ := relation.EncodeTuple(nil, right, relation.Tuple{relation.IntVal(1), relation.IntVal(9)})
	rNo, _ := relation.EncodeTuple(nil, right, relation.Tuple{relation.IntVal(1), relation.IntVal(5)})
	if ok, _ := b.EvalPair(lraw, rYes); !ok {
		t.Error("multi-term condition rejected matching pair")
	}
	if ok, _ := b.EvalPair(lraw, rNo); ok {
		t.Error("multi-term condition accepted non-matching pair")
	}
	if got := cond.String(); got != "a = c and b < d" {
		t.Errorf("JoinCond.String = %q", got)
	}
	if got := cond.LeftAttrs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("LeftAttrs = %v", got)
	}
	if got := cond.RightAttrs(); len(got) != 2 || got[0] != "c" || got[1] != "d" {
		t.Errorf("RightAttrs = %v", got)
	}
}

func TestJoinCondErrors(t *testing.T) {
	left := relation.MustSchema(relation.Attr{Name: "a", Type: relation.Int32})
	right := relation.MustSchema(relation.Attr{Name: "s", Type: relation.String, Width: 4})
	cases := []JoinCond{
		{},
		Equi("missing", "s"),
		Equi("a", "missing"),
		Equi("a", "s"), // incomparable kinds
	}
	for _, c := range cases {
		if _, err := c.Bind(left, right); err == nil {
			t.Errorf("Bind(%v) succeeded, want error", c)
		}
	}
	// FirstEqui with no EQ term.
	b, err := JoinCond{Terms: []JoinTerm{{Left: "a", Op: LT, Right: "n"}}}.Bind(
		left, relation.MustSchema(relation.Attr{Name: "n", Type: relation.Int32}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := b.FirstEqui(); ok {
		t.Error("FirstEqui reported an equi term on a pure-theta condition")
	}
}

// TestQuickPredicateMatchesReference checks bound predicate evaluation
// against a reference evaluator that decodes the whole tuple first.
func TestQuickPredicateMatchesReference(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, idCut int32, qtyCut int32) bool {
		rng.Seed(seed)
		tup := relation.Tuple{
			relation.IntVal(int64(int32(rng.Uint32() % 100))),
			relation.IntVal(int64(int32(rng.Uint32() % 100))),
			relation.FloatVal(rng.Float64() * 10),
			relation.StringVal("t"),
		}
		raw, err := relation.EncodeTuple(nil, s, tup)
		if err != nil {
			return false
		}
		p := Disj(
			Conj(
				Compare{"id", LT, relation.IntVal(int64(idCut % 100))},
				Compare{"qty", GE, relation.IntVal(int64(qtyCut % 100))},
			),
			Compare{"price", GT, relation.FloatVal(5)},
		)
		b, err := p.Bind(s)
		if err != nil {
			return false
		}
		got, err := b.Eval(raw)
		if err != nil {
			return false
		}
		want := (tup[0].Int < int64(idCut%100) && tup[1].Int >= int64(qtyCut%100)) || tup[2].Flt > 5
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeMorgan: not(a and b) ≡ (not a) or (not b) over random
// tuples — an algebraic identity the evaluator must respect.
func TestQuickDeMorgan(t *testing.T) {
	s := testSchema(t)
	f := func(seed int64, idCut int32, qtyCut int32) bool {
		rng := rand.New(rand.NewSource(seed))
		raw, err := relation.EncodeTuple(nil, s, relation.Tuple{
			relation.IntVal(int64(rng.Intn(50))),
			relation.IntVal(int64(rng.Intn(50))),
			relation.FloatVal(rng.Float64()),
			relation.StringVal("z"),
		})
		if err != nil {
			return false
		}
		a := Compare{Attr: "id", Op: LT, Const: relation.IntVal(int64(idCut % 50))}
		b := Compare{Attr: "qty", Op: GE, Const: relation.IntVal(int64(qtyCut % 50))}
		lhs, err := (Not{Conj(a, b)}).Bind(s)
		if err != nil {
			return false
		}
		rhs, err := Disj(Not{a}, Not{b}).Bind(s)
		if err != nil {
			return false
		}
		lv, err1 := lhs.Eval(raw)
		rv, err2 := rhs.Eval(raw)
		return err1 == nil && err2 == nil && lv == rv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Package pred implements the predicate language used by restrict and
// join operators: comparisons between attributes and constants, combined
// with AND, OR, and NOT.
//
// Predicates are built as abstract trees referencing attributes by name,
// then bound to a schema. A bound predicate evaluates directly against
// the encoded bytes of a tuple, decoding only the attributes it actually
// mentions — the access pattern of a restrict processor scanning a page.
package pred

import (
	"fmt"
	"strings"

	"dfdbm/internal/relation"
)

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	EQ Op = iota + 1
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL-ish spelling of the operator.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp parses the spelling of a comparison operator.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=", "==":
		return EQ, nil
	case "!=", "<>":
		return NE, nil
	case "<":
		return LT, nil
	case "<=":
		return LE, nil
	case ">":
		return GT, nil
	case ">=":
		return GE, nil
	}
	return 0, fmt.Errorf("pred: unknown comparison operator %q", s)
}

// holds reports whether "cmp o 0" matches the operator: cmp is the
// three-way comparison result of left versus right.
func (o Op) holds(cmp int) bool {
	switch o {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	}
	return false
}

// Pred is a predicate tree node. Implementations are Compare,
// CompareAttrs, And, Or, Not, and the constants TruePred/FalsePred.
type Pred interface {
	// String renders the predicate in the surface syntax accepted by
	// the query parser.
	String() string
	// Attrs appends the names of all attributes the predicate reads.
	Attrs(dst []string) []string
	// Bind resolves attribute names against a schema, returning an
	// evaluator over encoded tuples.
	Bind(s *relation.Schema) (Bound, error)
}

// Bound is a predicate bound to a schema, evaluable against the raw
// bytes of one encoded tuple.
type Bound interface {
	Eval(raw []byte) (bool, error)
}

// Compare compares an attribute against a constant.
type Compare struct {
	Attr  string
	Op    Op
	Const relation.Value
}

// String implements Pred.
func (c Compare) String() string {
	if c.Const.Kind == relation.KindString {
		return fmt.Sprintf("%s %s %q", c.Attr, c.Op, c.Const.Str)
	}
	return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Const)
}

// Attrs implements Pred.
func (c Compare) Attrs(dst []string) []string { return append(dst, c.Attr) }

// Bind implements Pred.
func (c Compare) Bind(s *relation.Schema) (Bound, error) {
	i, err := s.Index(c.Attr)
	if err != nil {
		return nil, err
	}
	if want := relation.KindFor(s.Attr(i).Type); want != c.Const.Kind {
		return nil, fmt.Errorf("pred: attribute %q is %s but constant %s is not", c.Attr, s.Attr(i).Type, c.Const)
	}
	return boundCompare{schema: s, attr: i, op: c.Op, konst: c.Const}, nil
}

type boundCompare struct {
	schema *relation.Schema
	attr   int
	op     Op
	konst  relation.Value
}

func (b boundCompare) Eval(raw []byte) (bool, error) {
	v, err := relation.DecodeValue(b.schema, raw, b.attr)
	if err != nil {
		return false, err
	}
	cmp, err := v.Compare(b.konst)
	if err != nil {
		return false, err
	}
	return b.op.holds(cmp), nil
}

// CompareAttrs compares two attributes of the same tuple.
type CompareAttrs struct {
	A  string
	Op Op
	B  string
}

// String implements Pred.
func (c CompareAttrs) String() string { return fmt.Sprintf("%s %s %s", c.A, c.Op, c.B) }

// Attrs implements Pred.
func (c CompareAttrs) Attrs(dst []string) []string { return append(dst, c.A, c.B) }

// Bind implements Pred.
func (c CompareAttrs) Bind(s *relation.Schema) (Bound, error) {
	i, err := s.Index(c.A)
	if err != nil {
		return nil, err
	}
	j, err := s.Index(c.B)
	if err != nil {
		return nil, err
	}
	if relation.KindFor(s.Attr(i).Type) != relation.KindFor(s.Attr(j).Type) {
		return nil, fmt.Errorf("pred: attributes %q and %q are not comparable", c.A, c.B)
	}
	return boundCompareAttrs{schema: s, a: i, op: c.Op, b: j}, nil
}

type boundCompareAttrs struct {
	schema *relation.Schema
	a, b   int
	op     Op
}

func (b boundCompareAttrs) Eval(raw []byte) (bool, error) {
	va, err := relation.DecodeValue(b.schema, raw, b.a)
	if err != nil {
		return false, err
	}
	vb, err := relation.DecodeValue(b.schema, raw, b.b)
	if err != nil {
		return false, err
	}
	cmp, err := va.Compare(vb)
	if err != nil {
		return false, err
	}
	return b.op.holds(cmp), nil
}

// And is the conjunction of its children.
type And struct{ Kids []Pred }

// Conj builds an And from the given predicates.
func Conj(kids ...Pred) And { return And{Kids: kids} }

// String implements Pred.
func (a And) String() string { return joinKids(a.Kids, " and ") }

// Attrs implements Pred.
func (a And) Attrs(dst []string) []string {
	for _, k := range a.Kids {
		dst = k.Attrs(dst)
	}
	return dst
}

// Bind implements Pred.
func (a And) Bind(s *relation.Schema) (Bound, error) {
	kids, err := bindAll(a.Kids, s)
	if err != nil {
		return nil, err
	}
	return boundAnd(kids), nil
}

type boundAnd []Bound

func (b boundAnd) Eval(raw []byte) (bool, error) {
	for _, k := range b {
		ok, err := k.Eval(raw)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// Or is the disjunction of its children.
type Or struct{ Kids []Pred }

// Disj builds an Or from the given predicates.
func Disj(kids ...Pred) Or { return Or{Kids: kids} }

// String implements Pred.
func (o Or) String() string { return joinKids(o.Kids, " or ") }

// Attrs implements Pred.
func (o Or) Attrs(dst []string) []string {
	for _, k := range o.Kids {
		dst = k.Attrs(dst)
	}
	return dst
}

// Bind implements Pred.
func (o Or) Bind(s *relation.Schema) (Bound, error) {
	kids, err := bindAll(o.Kids, s)
	if err != nil {
		return nil, err
	}
	return boundOr(kids), nil
}

type boundOr []Bound

func (b boundOr) Eval(raw []byte) (bool, error) {
	for _, k := range b {
		ok, err := k.Eval(raw)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Not negates its child.
type Not struct{ Kid Pred }

// String implements Pred.
func (n Not) String() string { return "not (" + n.Kid.String() + ")" }

// Attrs implements Pred.
func (n Not) Attrs(dst []string) []string { return n.Kid.Attrs(dst) }

// Bind implements Pred.
func (n Not) Bind(s *relation.Schema) (Bound, error) {
	kid, err := n.Kid.Bind(s)
	if err != nil {
		return nil, err
	}
	return boundNot{kid}, nil
}

type boundNot struct{ kid Bound }

func (b boundNot) Eval(raw []byte) (bool, error) {
	ok, err := b.kid.Eval(raw)
	return !ok, err
}

// Const is a constant predicate; TruePred accepts every tuple.
type Const bool

// TruePred accepts every tuple; FalsePred rejects every tuple.
const (
	TruePred  Const = true
	FalsePred Const = false
)

// String implements Pred.
func (c Const) String() string {
	if c {
		return "true"
	}
	return "false"
}

// Attrs implements Pred.
func (c Const) Attrs(dst []string) []string { return dst }

// Bind implements Pred.
func (c Const) Bind(*relation.Schema) (Bound, error) { return boundConst(c), nil }

type boundConst bool

func (b boundConst) Eval([]byte) (bool, error) { return bool(b), nil }

func bindAll(kids []Pred, s *relation.Schema) ([]Bound, error) {
	if len(kids) == 0 {
		return nil, fmt.Errorf("pred: empty connective")
	}
	out := make([]Bound, len(kids))
	for i, k := range kids {
		b, err := k.Bind(s)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

func joinKids(kids []Pred, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = "(" + k.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Package hw models the hardware the paper assumes for its evaluation
// (Section 4.1): PDP LSI-11 instruction processors that read a 16 KB
// page in 33 ms, IBM 3330 disk drives, an Intel CCD multiport disk
// cache reached through a cross-bar switch with broadcast, and loop
// networks built from shift registers. Only timing matters: each device
// is a set of published constants plus functions mapping work to time.
package hw

import "time"

// Processor models a PDP LSI-11 instruction processor.
type Processor struct {
	// PageFetch16K is the time to move one 16 KB page between the data
	// cache and the processor's memory: 33 ms, from the paper.
	PageFetch16K time.Duration
	// PerTupleRestrict is the cost of evaluating a restriction
	// predicate against one tuple.
	PerTupleRestrict time.Duration
	// PerPairJoin is the cost of comparing one (outer, inner) tuple
	// pair in the nested-loops inner loop.
	PerPairJoin time.Duration
	// PerTupleProject is the cost of projecting one tuple and probing
	// the duplicate set.
	PerTupleProject time.Duration
	// PerTupleHashBuild and PerTupleHashProbe cost the hash-join
	// kernel: inserting one inner tuple into the hash table, and
	// probing one outer tuple against it. These do not appear in the
	// paper — its IPs run nested loops only — and are charged only when
	// a machine opts into hash-join timing.
	PerTupleHashBuild time.Duration
	PerTupleHashProbe time.Duration
}

// FetchTime returns the time to move the given number of bytes between
// the cache and the processor, scaled from the 16 KB / 33 ms figure.
func (p Processor) FetchTime(bytes int) time.Duration {
	return time.Duration(float64(p.PageFetch16K) * float64(bytes) / (16 * 1024))
}

// RestrictTime returns the compute time to restrict n tuples.
func (p Processor) RestrictTime(tuples int) time.Duration {
	return time.Duration(tuples) * p.PerTupleRestrict
}

// JoinTime returns the compute time for a nested-loops pass over
// outerTuples × innerTuples pairs.
func (p Processor) JoinTime(outerTuples, innerTuples int) time.Duration {
	return time.Duration(outerTuples*innerTuples) * p.PerPairJoin
}

// HashJoinTime returns the compute time for a hash-join pass: probing
// outerTuples against the inner page's table, plus building the table
// over innerTuples when it is not already resident (build).
func (p Processor) HashJoinTime(outerTuples, innerTuples int, build bool) time.Duration {
	t := time.Duration(outerTuples) * p.PerTupleHashProbe
	if build {
		t += time.Duration(innerTuples) * p.PerTupleHashBuild
	}
	return t
}

// ProjectTime returns the compute time to project n tuples.
func (p Processor) ProjectTime(tuples int) time.Duration {
	return time.Duration(tuples) * p.PerTupleProject
}

// Disk models an IBM 3330 disk drive.
type Disk struct {
	// AvgSeek is the average seek time (30 ms for the 3330).
	AvgSeek time.Duration
	// AvgRotation is the average rotational latency (half of the
	// 16.7 ms revolution: 8.35 ms).
	AvgRotation time.Duration
	// TransferBytesPerSec is the sustained transfer rate (806 KB/s).
	TransferBytesPerSec float64
}

// AccessTime returns the time to read or write the given number of
// bytes at a random position (seek + rotation + transfer).
func (d Disk) AccessTime(bytes int) time.Duration {
	xfer := time.Duration(float64(bytes) / d.TransferBytesPerSec * float64(time.Second))
	return d.AvgSeek + d.AvgRotation + xfer
}

// SequentialTime returns the transfer-only time for bytes already under
// the head (cache staging of consecutive pages).
func (d Disk) SequentialTime(bytes int) time.Duration {
	return time.Duration(float64(bytes) / d.TransferBytesPerSec * float64(time.Second))
}

// Ring models a serial loop network of the Distributed Loop Computer
// Network kind: shift-register insertion, variable-length messages.
type Ring struct {
	// BitsPerSec is the loop bandwidth. 25 ns shift registers
	// (AM25LS164/299) give 40 Mbps; ECL or fiber optics give more.
	BitsPerSec float64
	// HopDelay is the delay contributed by each node's shift-register
	// stage that a message passes through.
	HopDelay time.Duration
}

// TransferTime returns the time for a message of the given size to
// travel the given number of hops: serialization plus per-hop latency.
func (r Ring) TransferTime(bytes, hops int) time.Duration {
	ser := time.Duration(float64(bytes) * 8 / r.BitsPerSec * float64(time.Second))
	return ser + time.Duration(hops)*r.HopDelay
}

// SerializationTime returns only the time the message occupies the
// loop's insertion buffer — the quantity that bounds throughput.
func (r Ring) SerializationTime(bytes int) time.Duration {
	return time.Duration(float64(bytes) * 8 / r.BitsPerSec * float64(time.Second))
}

// Config gathers the device models of one machine configuration.
type Config struct {
	Proc      Processor
	Disk      Disk
	NumDisks  int
	InnerRing Ring
	OuterRing Ring
	// CacheBytesPerSec is the transfer rate between an instruction
	// controller's local memory and its segment of the multiport CCD
	// disk cache.
	CacheBytesPerSec float64
	// PageSize is the operand page size (16 KB in Section 4.1).
	PageSize int
	// ControlBytes is the size of a control packet; InstrHeaderBytes is
	// the non-operand portion of an instruction packet (Figure 4.3).
	ControlBytes     int
	InstrHeaderBytes int
}

// Default1979 returns the configuration of the paper's Section 4.1:
// LSI-11 processors, two IBM 3330 drives, a 40 Mbps outer ring and a
// 2 Mbps inner ring, 16 KB operand pages.
func Default1979() Config {
	return Config{
		Proc: Processor{
			PageFetch16K:     33 * time.Millisecond,
			PerTupleRestrict: 50 * time.Microsecond,
			PerPairJoin:      5 * time.Microsecond,
			PerTupleProject:  80 * time.Microsecond,
			// Hash steps cost more than one nested-loops comparison
			// (hashing plus chasing a bucket), but are paid per tuple
			// instead of per pair.
			PerTupleHashBuild: 10 * time.Microsecond,
			PerTupleHashProbe: 8 * time.Microsecond,
		},
		Disk: Disk{
			AvgSeek:             30 * time.Millisecond,
			AvgRotation:         8350 * time.Microsecond,
			TransferBytesPerSec: 806_000,
		},
		NumDisks: 2,
		InnerRing: Ring{
			BitsPerSec: 2e6, // 1-2 Mbps suffices for control (Section 4.1)
			HopDelay:   200 * time.Nanosecond,
		},
		OuterRing: Ring{
			BitsPerSec: 40e6, // 25 ns shift registers
			HopDelay:   200 * time.Nanosecond,
		},
		CacheBytesPerSec: 4_000_000,
		PageSize:         16 * 1024,
		ControlBytes:     32,
		InstrHeaderBytes: 64,
	}
}

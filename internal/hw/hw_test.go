package hw

import (
	"testing"
	"time"
)

func TestProcessorFetchScalesLinearly(t *testing.T) {
	p := Default1979().Proc
	if got := p.FetchTime(16 * 1024); got != 33*time.Millisecond {
		t.Errorf("FetchTime(16K) = %v, want 33ms", got)
	}
	if got := p.FetchTime(8 * 1024); got != 16500*time.Microsecond {
		t.Errorf("FetchTime(8K) = %v, want 16.5ms", got)
	}
	if got := p.FetchTime(0); got != 0 {
		t.Errorf("FetchTime(0) = %v", got)
	}
}

func TestProcessorComputeTimes(t *testing.T) {
	p := Default1979().Proc
	if got := p.RestrictTime(100); got != 5*time.Millisecond {
		t.Errorf("RestrictTime(100) = %v", got)
	}
	if got := p.JoinTime(100, 50); got != 25*time.Millisecond {
		t.Errorf("JoinTime(100,50) = %v", got)
	}
	if got := p.ProjectTime(10); got != 800*time.Microsecond {
		t.Errorf("ProjectTime(10) = %v", got)
	}
}

func TestDiskAccess(t *testing.T) {
	d := Default1979().Disk
	// 16 KB at 806 KB/s ≈ 20.3 ms transfer + 30 + 8.35 ms.
	got := d.AccessTime(16 * 1024)
	if got < 58*time.Millisecond || got > 60*time.Millisecond {
		t.Errorf("AccessTime(16K) = %v, want ≈58.7ms", got)
	}
	seq := d.SequentialTime(16 * 1024)
	if seq >= got {
		t.Error("sequential not faster than random access")
	}
	if seq < 20*time.Millisecond || seq > 21*time.Millisecond {
		t.Errorf("SequentialTime(16K) = %v, want ≈20.3ms", seq)
	}
}

func TestRingTransfer(t *testing.T) {
	r := Default1979().OuterRing
	// 16 KB at 40 Mbps ≈ 3.28 ms serialization.
	ser := r.SerializationTime(16 * 1024)
	if ser < 3200*time.Microsecond || ser > 3350*time.Microsecond {
		t.Errorf("SerializationTime = %v, want ≈3.28ms", ser)
	}
	tt := r.TransferTime(16*1024, 10)
	if tt != ser+10*r.HopDelay {
		t.Errorf("TransferTime = %v, want serialization + 10 hops", tt)
	}
}

func TestInnerRingIsControlSized(t *testing.T) {
	cfg := Default1979()
	if cfg.InnerRing.BitsPerSec > cfg.OuterRing.BitsPerSec {
		t.Error("inner ring faster than outer ring")
	}
	// A control packet on the inner ring must be far below a millisecond.
	if got := cfg.InnerRing.TransferTime(cfg.ControlBytes, 5); got > time.Millisecond {
		t.Errorf("control packet takes %v", got)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := Default1979()
	if cfg.PageSize != 16*1024 {
		t.Errorf("PageSize = %d", cfg.PageSize)
	}
	if cfg.NumDisks != 2 {
		t.Errorf("NumDisks = %d", cfg.NumDisks)
	}
	if cfg.Proc.PageFetch16K != 33*time.Millisecond {
		t.Errorf("PageFetch16K = %v", cfg.Proc.PageFetch16K)
	}
	if cfg.OuterRing.BitsPerSec != 40e6 {
		t.Errorf("outer ring = %g bps", cfg.OuterRing.BitsPerSec)
	}
}

package sim

import "time"

// Station is a k-server FCFS service center: jobs are served in arrival
// order, each occupying one server for its service time. It models
// devices with known service times — a disk, a ring link, a processor —
// and accumulates busy time for utilization reporting.
type Station struct {
	sim *Sim
	// freeAt[i] is the time server i finishes its last assigned job.
	freeAt []time.Duration
	busy   time.Duration
	jobs   int64
}

// NewStation returns a station with k servers (k ≥ 1).
func NewStation(s *Sim, k int) *Station {
	if k < 1 {
		k = 1
	}
	return &Station{sim: s, freeAt: make([]time.Duration, k)}
}

// Serve enqueues a job with the given service time; done (which may be
// nil) runs at its completion. Serve returns the completion time.
func (st *Station) Serve(service time.Duration, done func()) time.Duration {
	// Pick the server that frees earliest.
	best := 0
	for i := 1; i < len(st.freeAt); i++ {
		if st.freeAt[i] < st.freeAt[best] {
			best = i
		}
	}
	start := st.sim.Now()
	if st.freeAt[best] > start {
		start = st.freeAt[best]
	}
	finish := start + service
	st.freeAt[best] = finish
	st.busy += service
	st.jobs++
	if done != nil {
		st.sim.At(finish, done)
	}
	return finish
}

// BusyTime returns the total service time accumulated across servers.
func (st *Station) BusyTime() time.Duration { return st.busy }

// Jobs returns the number of jobs served (including queued ones).
func (st *Station) Jobs() int64 { return st.jobs }

// Utilization returns busy time divided by (elapsed × servers), using
// the given elapsed duration.
func (st *Station) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(st.busy) / (float64(elapsed) * float64(len(st.freeAt)))
}

// Resource is a counted semaphore with a FIFO wait queue: the sim-world
// analogue of acquiring one of a pool of identical units (instruction
// processors, cache page frames).
type Resource struct {
	sim     *Sim
	free    int
	total   int
	waiters []func()
}

// NewResource returns a resource with n units available.
func NewResource(s *Sim, n int) *Resource {
	return &Resource{sim: s, free: n, total: n}
}

// Acquire requests one unit; fn runs (as an immediate event) once a unit
// is granted.
func (r *Resource) Acquire(fn func()) {
	if r.free > 0 {
		r.free--
		r.sim.After(0, fn)
		return
	}
	r.waiters = append(r.waiters, fn)
}

// TryAcquire takes a unit if one is free, reporting success.
func (r *Resource) TryAcquire() bool {
	if r.free > 0 {
		r.free--
		return true
	}
	return false
}

// Release returns one unit, granting it to the oldest waiter if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		fn := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.sim.After(0, fn)
		return
	}
	r.free++
	if r.free > r.total {
		panic("sim: Resource released more units than acquired")
	}
}

// Free returns the number of available units.
func (r *Resource) Free() int { return r.free }

// Waiting returns the number of queued acquirers.
func (r *Resource) Waiting() int { return len(r.waiters) }

package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Errorf("final time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of scheduling order: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New()
	var hits []time.Duration
	s.After(5*time.Millisecond, func() {
		hits = append(hits, s.Now())
		s.After(7*time.Millisecond, func() {
			hits = append(hits, s.Now())
		})
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 5*time.Millisecond || hits[1] != 12*time.Millisecond {
		t.Errorf("hits = %v", hits)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	s := New()
	fired := time.Duration(-1)
	s.At(10*time.Millisecond, func() {
		s.At(1*time.Millisecond, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want clamp to 10ms", fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var count int
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	now := s.RunUntil(3 * time.Second)
	if count != 3 || now != 3*time.Second || s.Pending() != 2 {
		t.Errorf("count=%d now=%v pending=%d", count, now, s.Pending())
	}
	s.Run()
	if count != 5 {
		t.Errorf("count after full run = %d", count)
	}
}

func TestStationSingleServerFCFS(t *testing.T) {
	s := New()
	st := NewStation(s, 1)
	var finishes []time.Duration
	record := func() { finishes = append(finishes, s.Now()) }
	// Three 10 ms jobs submitted at time zero must finish at 10, 20, 30.
	st.Serve(10*time.Millisecond, record)
	st.Serve(10*time.Millisecond, record)
	st.Serve(10*time.Millisecond, record)
	s.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if finishes[i] != want[i] {
			t.Errorf("finish %d = %v, want %v", i, finishes[i], want[i])
		}
	}
	if st.Jobs() != 3 || st.BusyTime() != 30*time.Millisecond {
		t.Errorf("jobs=%d busy=%v", st.Jobs(), st.BusyTime())
	}
	if u := st.Utilization(30 * time.Millisecond); u != 1.0 {
		t.Errorf("utilization = %g, want 1", u)
	}
}

func TestStationMultiServer(t *testing.T) {
	s := New()
	st := NewStation(s, 2)
	var finishes []time.Duration
	record := func() { finishes = append(finishes, s.Now()) }
	st.Serve(10*time.Millisecond, record)
	st.Serve(10*time.Millisecond, record)
	st.Serve(10*time.Millisecond, record)
	s.Run()
	// Two run immediately (finish at 10), third queues (finish at 20).
	if finishes[0] != 10*time.Millisecond || finishes[1] != 10*time.Millisecond ||
		finishes[2] != 20*time.Millisecond {
		t.Errorf("finishes = %v", finishes)
	}
	if u := st.Utilization(20 * time.Millisecond); u != 0.75 {
		t.Errorf("utilization = %g, want 0.75", u)
	}
}

func TestStationLaterArrival(t *testing.T) {
	s := New()
	st := NewStation(s, 1)
	var finish time.Duration
	s.At(50*time.Millisecond, func() {
		st.Serve(5*time.Millisecond, func() { finish = s.Now() })
	})
	s.Run()
	if finish != 55*time.Millisecond {
		t.Errorf("finish = %v, want 55ms (no service before arrival)", finish)
	}
}

func TestStationNilDone(t *testing.T) {
	s := New()
	st := NewStation(s, 1)
	end := st.Serve(time.Second, nil)
	if end != time.Second {
		t.Errorf("Serve returned %v", end)
	}
	s.Run()
}

func TestStationMinServers(t *testing.T) {
	s := New()
	st := NewStation(s, 0)
	if len(st.freeAt) != 1 {
		t.Error("zero-server station not clamped to 1")
	}
	if st.Utilization(0) != 0 {
		t.Error("Utilization with zero elapsed should be 0")
	}
}

func TestResourceGrantAndQueue(t *testing.T) {
	s := New()
	r := NewResource(s, 2)
	var granted []int
	for i := 0; i < 4; i++ {
		i := i
		r.Acquire(func() { granted = append(granted, i) })
	}
	s.Run()
	if len(granted) != 2 || r.Free() != 0 || r.Waiting() != 2 {
		t.Fatalf("granted=%v free=%d waiting=%d", granted, r.Free(), r.Waiting())
	}
	r.Release()
	r.Release()
	s.Run()
	if len(granted) != 4 {
		t.Errorf("granted after releases = %v", granted)
	}
	// FIFO: waiters granted in order.
	for i, g := range granted {
		if g != i {
			t.Errorf("grant order = %v", granted)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	if !r.TryAcquire() {
		t.Error("TryAcquire failed with a free unit")
	}
	if r.TryAcquire() {
		t.Error("TryAcquire succeeded with no free units")
	}
	r.Release()
	if r.Free() != 1 {
		t.Errorf("Free = %d after release", r.Free())
	}
}

func TestResourceOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	s := New()
	r := NewResource(s, 1)
	r.Release()
}

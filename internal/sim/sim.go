// Package sim is a small deterministic discrete-event simulation kernel:
// a virtual clock, an event heap, and two service primitives (Station, a
// k-server FCFS queue, and Resource, a counted semaphore). The DIRECT
// simulator and the ring-machine simulator are built on it.
//
// Determinism: events scheduled for the same instant fire in scheduling
// order, so a simulation run is a pure function of its inputs.
package sim

import (
	"container/heap"
	"time"
)

// Sim is one simulation: a clock and a pending-event queue.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

// New returns a simulation with the clock at zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past runs the event at the current time (never before: the clock is
// monotonic).
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Step runs the next pending event, returning false when none remain.
func (s *Sim) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	s.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain and returns the final time.
func (s *Sim) Run() time.Duration {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with time ≤ limit; later events stay queued.
// It returns the current time when it stops.
func (s *Sim) RunUntil(limit time.Duration) time.Duration {
	for s.events.Len() > 0 && s.events[0].at <= limit {
		s.Step()
	}
	if s.now < limit {
		s.now = limit
	}
	return s.now
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

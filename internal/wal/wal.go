package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/heap"
	"dfdbm/internal/obs"
)

// FsyncPolicy says when appended records are forced to stable storage.
type FsyncPolicy uint8

const (
	// FsyncCommit (the default) fsyncs before Append returns: every
	// acknowledged record survives kill -9 and power loss. Concurrent
	// appenders share fsyncs through the group-commit batcher, so the
	// cost is one fsync per batch, not per record.
	FsyncCommit FsyncPolicy = iota
	// FsyncNone writes records without forcing them: an OS crash can
	// lose acknowledged tail records (a process kill -9 alone cannot,
	// since the page cache survives the process). For benchmarks and
	// bulk loads.
	FsyncNone
)

// String returns the policy name accepted by the -fsync flag.
func (p FsyncPolicy) String() string {
	if p == FsyncNone {
		return "none"
	}
	return "commit"
}

// ParseFsyncPolicy parses a -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "commit":
		return FsyncCommit, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want commit or none)", s)
	}
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// Options parameterizes a Log.
type Options struct {
	// SegmentSize is the rotation threshold in bytes: a segment that
	// would grow past it is closed and a new one started. Default 16 MiB.
	SegmentSize int64
	// Fsync is the durability policy. Default FsyncCommit.
	Fsync FsyncPolicy
	// Snapshots is how many catalog snapshots to retain (the newest is
	// the recovery base; older ones are fallbacks for a torn newest).
	// Default 2.
	Snapshots int
	// Obs, when non-nil, receives the wal.* counters and histograms
	// (append/fsync latency, group-commit size, recovery and
	// torn-tail counters) and — when it carries a flight recorder —
	// one "replayed" flight record per recovered write.
	Obs *obs.Observer
	// Injector, when non-nil, deterministically fails or hard-exits
	// the Nth record write or fsync: the crash-point hook driving
	// recovery tests and the CI kill -9 loop.
	Injector *Injector
	// Heap, when non-nil, switches the data directory to heap-file
	// storage: each relation lives in <dir>/heap/<name>.heap behind a
	// shared pinning buffer pool, checkpoints flush and advance the
	// per-relation files instead of snapshotting the whole catalog,
	// and recovery replays the log tail into the files page-by-page.
	Heap *HeapOptions
}

// HeapOptions parameterizes heap-file storage (Options.Heap).
type HeapOptions struct {
	// Frames is the buffer-pool frame budget shared by all relations.
	// Default heap.DefaultFrames.
	Frames int
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 16 << 20
	}
	if o.Snapshots <= 0 {
		o.Snapshots = 2
	}
	return o
}

// Injector is the deterministic crash-point injector, in the spirit of
// internal/fault's seeded plans: it fails (or hard-exits, the in-
// process kill -9) at the Nth WAL record write or the Nth fsync, so a
// test can place a crash at every interesting point of the commit
// protocol and assert recovery.
type Injector struct {
	// FailWrite fails the Nth record write (1-based; 0 never).
	FailWrite int64
	// Torn, with FailWrite, writes a torn prefix of the record before
	// failing — the on-disk shape of a crash mid-write.
	Torn bool
	// FailSync fails the Nth fsync (1-based; 0 never).
	FailSync int64
	// Hard exits the process with ExitCode instead of returning an
	// error: a seeded kill -9.
	Hard bool
	// ExitCode is the Hard exit status. Default 137 (SIGKILL's shell
	// convention).
	ExitCode int

	// exit stubs os.Exit in tests.
	exit func(int)

	writes atomic.Int64
	syncs  atomic.Int64
}

var errInjected = errors.New("wal: injected failure")

// Injected reports whether err came from the injector (and not real I/O).
func Injected(err error) bool { return errors.Is(err, errInjected) }

func (in *Injector) die() error {
	if in.Hard {
		code := in.ExitCode
		if code == 0 {
			code = 137
		}
		exit := in.exit
		if exit == nil {
			exit = os.Exit
		}
		exit(code)
	}
	return errInjected
}

// onWrite returns what the injector decrees for the next record write:
// nil (proceed), or an error after optionally leaving a torn prefix.
func (in *Injector) onWrite(f *os.File, frame []byte) error {
	if in == nil {
		return nil
	}
	if in.writes.Add(1) != in.FailWrite {
		return nil
	}
	if in.Torn && len(frame) > 1 {
		f.Write(frame[:len(frame)/2])
		f.Sync() // make the torn prefix itself durable, worst case for recovery
	}
	return in.die()
}

func (in *Injector) onSync() error {
	if in == nil {
		return nil
	}
	if in.syncs.Add(1) != in.FailSync {
		return nil
	}
	return in.die()
}

// Log is an open write-ahead log rooted at a data directory:
//
//	<dir>/snap-<lsn>.db    atomic catalog snapshots
//	<dir>/wal/wal-<lsn>.seg  log segments, first LSN in the name
//
// Append is safe for concurrent use; records are assigned dense LSNs
// in arrival order and made durable by a single group-commit flusher
// that shares one fsync across every record queued behind it.
type Log struct {
	dir    string
	walDir string
	opts   Options

	appendHist *obs.Histogram // wal.append_ns: enqueue to durable
	fsyncHist  *obs.Histogram // wal.fsync_ns
	groupHist  *obs.Histogram // wal.group_commit_size

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*appendReq
	closed bool
	broken error  // sticky first I/O failure; later appends fail fast
	lsn    uint64 // last assigned LSN

	// Flusher-owned segment state (guarded by the flusher being the
	// only writer after Open returns).
	seg      *os.File
	segStart uint64
	segSize  int64

	sinceCkpt atomic.Int64 // bytes appended since the last checkpoint
	ckptGen   atomic.Int64 // catalog generation at the last checkpoint
	ckptLSN   atomic.Uint64

	// heap is the heap-file store when Options.Heap is set; nil in
	// snapshot mode.
	heap *heap.Store

	flusherDone chan struct{}
}

// Heap returns the heap-file store, or nil when the log runs in
// whole-catalog snapshot mode.
func (l *Log) Heap() *heap.Store { return l.heap }

// testFlushGate, when non-nil, sees every batch before it is written —
// the test hook that holds the flusher still while appenders pile up,
// forcing a group commit of known size.
var testFlushGate func(l *Log, batch []*appendReq)

type appendReq struct {
	lsn   uint64
	frame []byte
	done  chan error
	start time.Time
}

const (
	segPrefix    = "wal-"
	segSuffix    = ".seg"
	snapPrefix   = "snap-"
	snapSuffix   = ".db"
	segHeaderLen = 20
	segVersion   = 1
)

var segMagic = [8]byte{'D', 'F', 'D', 'B', 'M', 'W', 'A', 'L'}

func segName(firstLSN uint64) string  { return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix) }
func snapName(coverLSN uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, coverLSN, snapSuffix) }

// parseSeqName extracts the LSN from "wal-<16 hex>.seg" / "snap-...db".
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func segHeader(firstLSN uint64) []byte {
	buf := make([]byte, segHeaderLen)
	copy(buf, segMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], segVersion)
	binary.LittleEndian.PutUint64(buf[12:20], firstLSN)
	return buf
}

// LastLSN returns the most recently assigned LSN.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Dir returns the data directory the log is rooted at.
func (l *Log) Dir() string { return l.dir }

// SizeSinceCheckpoint returns the bytes of log appended since the last
// checkpoint — the redo work a crash right now would cost recovery.
func (l *Log) SizeSinceCheckpoint() int64 { return l.sinceCkpt.Load() }

// Append assigns rec the next LSN, writes it to the log, and returns
// once the record is durable under the configured fsync policy. It is
// the commit point: a caller may acknowledge the logical write to a
// client if and only if Append returned nil. Concurrent callers are
// batched behind shared fsyncs.
func (l *Log) Append(rec *Record) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if err := l.broken; err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.lsn++
	rec.LSN = l.lsn
	req := &appendReq{lsn: rec.LSN, frame: encode(rec), done: make(chan error, 1), start: start}
	l.queue = append(l.queue, req)
	l.cond.Signal()
	l.mu.Unlock()

	err := <-req.done
	l.appendHist.ObserveDuration(time.Since(start))
	return rec.LSN, err
}

// flusher is the single group-commit goroutine: it drains the queue,
// writes every pending frame (rotating segments at the size
// threshold), fsyncs once, and releases the whole batch.
func (l *Log) flusher() {
	defer close(l.flusherDone)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			if l.seg != nil {
				l.seg.Close()
			}
			return
		}
		batch := l.queue
		l.queue = nil
		l.mu.Unlock()

		if testFlushGate != nil {
			testFlushGate(l, batch)
		}
		err := l.flushBatch(batch)
		if err != nil {
			l.mu.Lock()
			if l.broken == nil {
				l.broken = fmt.Errorf("wal: log broken: %w", err)
			}
			l.mu.Unlock()
		}
		for _, req := range batch {
			req.done <- err
		}
	}
}

func (l *Log) flushBatch(batch []*appendReq) error {
	var bytes int64
	for _, req := range batch {
		if l.segSize+int64(len(req.frame)) > l.opts.SegmentSize && l.segSize > segHeaderLen {
			// The new segment is named after the LSN of the record about
			// to land in it — recovery relies on the name to order
			// segments and validate replay continuity.
			if err := l.rotate(req.lsn); err != nil {
				return err
			}
		}
		if err := l.opts.Injector.onWrite(l.seg, req.frame); err != nil {
			return err
		}
		if _, err := l.seg.Write(req.frame); err != nil {
			return err
		}
		l.segSize += int64(len(req.frame))
		bytes += int64(len(req.frame))
	}
	if l.opts.Fsync == FsyncCommit {
		if err := l.opts.Injector.onSync(); err != nil {
			return err
		}
		syncStart := time.Now()
		if err := l.seg.Sync(); err != nil {
			return err
		}
		l.fsyncHist.ObserveDuration(time.Since(syncStart))
		l.count("wal.fsyncs", 1)
	}
	l.groupHist.Observe(int64(len(batch)))
	l.count("wal.records", int64(len(batch)))
	l.count("wal.bytes", bytes)
	l.sinceCkpt.Add(bytes)
	return nil
}

// rotate closes the current segment and starts the next, named after
// firstLSN — the LSN of the record that will be written first into it.
// The old segment is fsynced before closing so no durable record can
// postdate an undurable predecessor across the boundary.
func (l *Log) rotate(firstLSN uint64) error {
	if l.opts.Fsync == FsyncCommit {
		if err := l.seg.Sync(); err != nil {
			return err
		}
	}
	if err := l.seg.Close(); err != nil {
		return err
	}
	return l.openSegment(firstLSN)
}

// openSegment creates and durably registers a fresh segment whose
// first record will carry firstLSN: header written, file and directory
// fsynced, before any record lands in it.
func (l *Log) openSegment(firstLSN uint64) error {
	path := filepath.Join(l.walDir, segName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(segHeader(firstLSN)); err != nil {
		f.Close()
		return err
	}
	if l.opts.Fsync == FsyncCommit {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := catalog.SyncDir(l.walDir); err != nil {
			f.Close()
			return err
		}
	}
	l.seg = f
	l.segStart = firstLSN
	l.segSize = segHeaderLen
	l.count("wal.segments_created", 1)
	return nil
}

// Checkpoint atomically snapshots the catalog, logs a checkpoint
// record referencing it, and prunes segments and snapshots the new
// snapshot obsoletes. The caller must guarantee no writer mutates the
// catalog during the call (the server runs checkpoints as a job whose
// footprint writes every relation). A checkpoint with no writes since
// the previous one is skipped.
func (l *Log) Checkpoint(cat *catalog.Catalog) error {
	gen := cat.Generation()
	if gen == l.ckptGen.Load() && l.hasCheckpointBase() {
		l.count("wal.checkpoints_skipped", 1)
		return nil
	}
	cover := l.LastLSN()
	name := heapCheckpointName
	if l.heap != nil {
		// Heap mode: per-relation durability. Flush every dirty frame,
		// fsync each heap file, advance its header to cover, and commit
		// the set via the manifest — no whole-catalog snapshot.
		if err := l.heap.Checkpoint(cat, cover); err != nil {
			return fmt.Errorf("wal: heap checkpoint: %w", err)
		}
	} else {
		name = snapName(cover)
		if err := catalog.WriteFileAtomic(filepath.Join(l.dir, name), cat.Save); err != nil {
			return fmt.Errorf("wal: checkpoint snapshot: %w", err)
		}
	}
	if _, err := l.Append(&Record{Type: RecCheckpoint, Snapshot: name, CoverLSN: cover}); err != nil {
		return fmt.Errorf("wal: checkpoint record: %w", err)
	}
	l.ckptGen.Store(gen)
	l.ckptLSN.Store(cover)
	l.sinceCkpt.Store(0)
	l.count("wal.checkpoints", 1)
	if err := l.prune(cover); err != nil {
		return fmt.Errorf("wal: checkpoint prune: %w", err)
	}
	return nil
}

// heapCheckpointName is the Snapshot field of heap-mode checkpoint
// records: the durable base is the heap files themselves.
const heapCheckpointName = "heap"

// hasCheckpointBase reports whether a recovery base already exists on
// disk (a snapshot file, or in heap mode a committed manifest) — the
// condition under which an unchanged-generation checkpoint may be
// skipped.
func (l *Log) hasCheckpointBase() bool {
	if l.heap != nil {
		return l.heap.ManifestExists()
	}
	return l.hasSnapshot()
}

func (l *Log) hasSnapshot() bool {
	snaps, _ := listSeq(l.dir, snapPrefix, snapSuffix)
	return len(snaps) > 0
}

// prune removes segments fully covered by the checkpoint at cover and
// all but the newest Options.Snapshots snapshot files.
func (l *Log) prune(cover uint64) error {
	segs, err := listSeq(l.walDir, segPrefix, segSuffix)
	if err != nil {
		return err
	}
	// A segment is removable iff every record in it has LSN <= cover,
	// i.e. the next segment starts at or below cover+1. The last
	// segment is never removed.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].lsn <= cover+1 {
			if err := os.Remove(segs[i].path); err != nil {
				return err
			}
			l.count("wal.segments_pruned", 1)
		}
	}
	snaps, err := listSeq(l.dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	for i := 0; i < len(snaps)-l.opts.Snapshots; i++ {
		if err := os.Remove(snaps[i].path); err != nil {
			return err
		}
		l.count("wal.snapshots_pruned", 1)
	}
	return catalog.SyncDir(l.dir)
}

// Close flushes pending appends and closes the log. In heap mode the
// heap files close WITHOUT flushing dirty buffer-pool frames: every
// unflushed page is past some file's base LSN and therefore in the
// log, so an unflushed close recovers exactly like a crash — which
// keeps the close path trivially correct.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.flusherDone
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	<-l.flusherDone
	if l.heap != nil {
		return l.heap.Close()
	}
	return nil
}

// seqFile is one LSN-named file (segment or snapshot).
type seqFile struct {
	path string
	lsn  uint64
}

// listSeq lists the LSN-named files with the given prefix/suffix in
// dir, sorted ascending by LSN.
func listSeq(dir, prefix, suffix string) ([]seqFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []seqFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := parseSeqName(e.Name(), prefix, suffix); ok {
			out = append(out, seqFile{path: filepath.Join(dir, e.Name()), lsn: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lsn < out[j].lsn })
	return out, nil
}

func (l *Log) count(name string, delta int64) {
	if l.opts.Obs.MetricsOn() {
		l.opts.Obs.Registry().Inc(name, delta)
	}
}

// Package wal implements the write-ahead log that makes the dfdbm
// service's write path crash-safe: a segmented, CRC-32C-framed redo
// log with group commit, atomic catalog snapshots, and kill -9
// recovery. It is the durability spine of the paper's three-level
// storage hierarchy — relations still execute from IC memory, but
// every acknowledged append/delete is durable on mass storage before
// the acknowledgement leaves the server.
//
// Records are logical-with-payload: an Append record carries the
// destination relation, a schema hash, and the appended tuples as page
// blobs; a Delete record carries the target relation and the predicate
// text (replay is deterministic given prior state); a Checkpoint
// record references an atomically written catalog snapshot. Recovery
// loads the newest valid snapshot, replays the log tail in LSN order,
// and truncates a torn tail at the first bad CRC instead of failing.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"dfdbm/internal/catalog"
	"dfdbm/internal/heap"
	"dfdbm/internal/query"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
)

// RecordType identifies what a log record redoes.
type RecordType uint8

// Record types.
const (
	// RecAppend redoes an append: insert the carried page payload's
	// tuples into the named relation, in order.
	RecAppend RecordType = iota + 1
	// RecDelete redoes a delete: remove the tuples matching the
	// carried predicate text from the named relation and compact it.
	RecDelete
	// RecCheckpoint marks a consistent catalog snapshot: every record
	// at or below CoverLSN is reflected in the referenced snapshot
	// file, so recovery may start there. In heap mode the snapshot
	// name is the literal "heap" and the durable state lives in the
	// per-relation heap files' base LSNs.
	RecCheckpoint
	// RecAppendPages redoes an append physically: overwrite (or
	// extend) the named relation's pages starting at slot First with
	// the carried full-page post-images. Heap-backed relations log
	// appends this way because eviction write-backs mutate slots in
	// place — a torn slot write can damage pre-append tuples that
	// logical redo could not rebuild, whereas re-installing the whole
	// post-image repairs the slot no matter where it tore. Replay is
	// idempotent by construction.
	RecAppendPages
)

// String returns the lower-case record-type name.
func (t RecordType) String() string {
	switch t {
	case RecAppend:
		return "append"
	case RecDelete:
		return "delete"
	case RecCheckpoint:
		return "checkpoint"
	case RecAppendPages:
		return "append-pages"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ErrCorrupt marks log bytes that fail validation: a CRC mismatch, a
// truncated frame, or a structurally impossible value. Callers test
// with errors.Is. Corruption confined to the tail of the last segment
// is not an error — recovery truncates it — but corruption anywhere
// else surfaces as ErrCorrupt.
var ErrCorrupt = errors.New("wal: corrupt log")

// Record is one redo-log record.
type Record struct {
	// LSN is the record's log sequence number, assigned by Append.
	// LSNs are dense: every record's LSN is its predecessor's plus
	// one, which lets recovery verify replay continuity.
	LSN uint64
	// Type says which of the remaining fields are meaningful.
	Type RecordType
	// Rel names the written relation (RecAppend, RecDelete).
	Rel string
	// SchemaHash fingerprints the destination schema at log time
	// (RecAppend); replay refuses a drifted schema rather than
	// corrupting tuples.
	SchemaHash uint64
	// Pages is the appended payload in relation.Page wire form
	// (RecAppend), or full post-image pages starting at slot First
	// (RecAppendPages).
	Pages [][]byte
	// First is the index of the first page slot the post-images in
	// Pages overwrite or extend (RecAppendPages).
	First uint64
	// Pred is the delete predicate in the query language's surface
	// syntax (RecDelete); replay re-parses it.
	Pred string
	// Snapshot names the catalog snapshot file and CoverLSN the
	// highest LSN it reflects (RecCheckpoint).
	Snapshot string
	CoverLSN uint64
}

// SchemaHash fingerprints a schema layout: FNV-1a over its rendered
// attribute list. Two schemas hash equal iff their names, types, and
// widths match. Delegates to heap.SchemaHash so log records and heap
// file headers agree byte-for-byte.
func SchemaHash(s *relation.Schema) uint64 {
	return heap.SchemaHash(s)
}

// Summary renders the record's logical operation for logs and the
// inspect subcommand.
func (r *Record) Summary() string {
	switch r.Type {
	case RecAppend:
		return fmt.Sprintf("append(%s, <%d pages>)", r.Rel, len(r.Pages))
	case RecDelete:
		return fmt.Sprintf("delete(%s, %s)", r.Rel, r.Pred)
	case RecCheckpoint:
		return fmt.Sprintf("checkpoint(%s, cover %d)", r.Snapshot, r.CoverLSN)
	case RecAppendPages:
		return fmt.Sprintf("append-pages(%s, slots %d..%d)", r.Rel, r.First, r.First+uint64(len(r.Pages))-1)
	default:
		return r.Type.String()
	}
}

// Apply redoes the record against the catalog and returns the mutated
// relation (nil for checkpoints). The service write path and recovery
// both apply records through this one function, so a replayed log
// reproduces exactly the state the live writes built.
func (r *Record) Apply(cat *catalog.Catalog) (*relation.Relation, error) {
	switch r.Type {
	case RecAppend:
		dst, err := cat.Get(r.Rel)
		if err != nil {
			return nil, fmt.Errorf("wal: apply lsn %d: %w", r.LSN, err)
		}
		if got := SchemaHash(dst.Schema()); got != r.SchemaHash {
			return nil, fmt.Errorf("%w: lsn %d: schema of %q drifted (hash %016x, logged %016x)",
				ErrCorrupt, r.LSN, r.Rel, got, r.SchemaHash)
		}
		for i, blob := range r.Pages {
			pg, err := relation.UnmarshalPage(blob)
			if err != nil {
				return nil, fmt.Errorf("%w: lsn %d: page %d: %v", ErrCorrupt, r.LSN, i, err)
			}
			if pg.TupleLen() != dst.Schema().TupleLen() {
				return nil, fmt.Errorf("%w: lsn %d: page %d tuple length %d does not match %q",
					ErrCorrupt, r.LSN, i, pg.TupleLen(), r.Rel)
			}
			var insertErr error
			pg.EachRaw(func(raw []byte) bool {
				insertErr = dst.InsertRaw(raw)
				return insertErr == nil
			})
			if insertErr != nil {
				return nil, fmt.Errorf("wal: apply lsn %d: %w", r.LSN, insertErr)
			}
		}
		cat.Touch(r.Rel)
		return dst, nil

	case RecAppendPages:
		dst, err := cat.Get(r.Rel)
		if err != nil {
			return nil, fmt.Errorf("wal: apply lsn %d: %w", r.LSN, err)
		}
		if got := SchemaHash(dst.Schema()); got != r.SchemaHash {
			return nil, fmt.Errorf("%w: lsn %d: schema of %q drifted (hash %016x, logged %016x)",
				ErrCorrupt, r.LSN, r.Rel, got, r.SchemaHash)
		}
		if int(r.First) > dst.NumPages() {
			return nil, fmt.Errorf("%w: lsn %d: append-pages at slot %d leaves a gap (%q has %d pages)",
				ErrCorrupt, r.LSN, r.First, r.Rel, dst.NumPages())
		}
		for i, blob := range r.Pages {
			pg, err := relation.UnmarshalPage(blob)
			if err != nil {
				return nil, fmt.Errorf("%w: lsn %d: page %d: %v", ErrCorrupt, r.LSN, i, err)
			}
			if err := dst.InstallPage(int(r.First)+i, pg); err != nil {
				return nil, fmt.Errorf("wal: apply lsn %d: %w", r.LSN, err)
			}
		}
		cat.Touch(r.Rel)
		return dst, nil

	case RecDelete:
		target, err := cat.Get(r.Rel)
		if err != nil {
			return nil, fmt.Errorf("wal: apply lsn %d: %w", r.LSN, err)
		}
		root, err := query.Parse(fmt.Sprintf("delete(%s, %s)", r.Rel, r.Pred))
		if err != nil || root.Kind != query.OpDelete {
			return nil, fmt.Errorf("%w: lsn %d: unreplayable delete predicate %q: %v", ErrCorrupt, r.LSN, r.Pred, err)
		}
		if target.Stored() {
			// Stored relations delete by copy-and-swap: materialize,
			// delete in memory, atomically rewrite the heap file with
			// base LSN = this record's LSN. Replay after a crash either
			// sees the old file (baseLSN < LSN, record re-applies) or
			// the new one (baseLSN >= LSN, record is skipped) — the
			// rename is the atomic commit.
			resident, err := target.Materialize()
			if err != nil {
				return nil, fmt.Errorf("wal: apply lsn %d: %w", r.LSN, err)
			}
			if _, err := relalg.Delete(resident, root.Pred); err != nil {
				return nil, fmt.Errorf("wal: apply lsn %d: %w", r.LSN, err)
			}
			if err := target.ReplaceStored(resident, r.LSN); err != nil {
				return nil, fmt.Errorf("wal: apply lsn %d: %w", r.LSN, err)
			}
		} else if _, err := relalg.Delete(target, root.Pred); err != nil {
			return nil, fmt.Errorf("wal: apply lsn %d: %w", r.LSN, err)
		}
		cat.Touch(r.Rel)
		return target, nil

	case RecCheckpoint:
		return nil, nil

	default:
		return nil, fmt.Errorf("%w: lsn %d: unknown record type %d", ErrCorrupt, r.LSN, uint8(r.Type))
	}
}

// Frame layout: u32 payload length | u32 CRC-32C of payload | payload.
// The payload starts with the type byte and LSN, then type-specific
// fields. All integers little-endian, strings u16-length-prefixed.
const frameHeaderLen = 8

// maxRecordLen bounds a single record payload; longer claims are
// treated as corruption rather than allocated.
const maxRecordLen = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encode renders the record as one frame ready to hit the segment.
func encode(r *Record) []byte {
	n := 1 + 8 + 2 + len(r.Rel) + 2 + len(r.Pred) + 2 + len(r.Snapshot) + 8 + 8 + 4
	for _, b := range r.Pages {
		n += 4 + len(b)
	}
	buf := make([]byte, frameHeaderLen, frameHeaderLen+n)
	buf = append(buf, byte(r.Type))
	buf = binary.LittleEndian.AppendUint64(buf, r.LSN)
	switch r.Type {
	case RecAppend, RecAppendPages:
		buf = appendString(buf, r.Rel)
		buf = binary.LittleEndian.AppendUint64(buf, r.SchemaHash)
		if r.Type == RecAppendPages {
			buf = binary.LittleEndian.AppendUint64(buf, r.First)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Pages)))
		for _, b := range r.Pages {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
			buf = append(buf, b...)
		}
	case RecDelete:
		buf = appendString(buf, r.Rel)
		buf = appendString(buf, r.Pred)
	case RecCheckpoint:
		buf = appendString(buf, r.Snapshot)
		buf = binary.LittleEndian.AppendUint64(buf, r.CoverLSN)
	}
	payload := buf[frameHeaderLen:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return buf
}

// readRecord decodes the next frame from r. io.EOF means a clean end;
// any other failure — short read, CRC mismatch, bad structure — wraps
// ErrCorrupt. The caller decides whether that is a truncatable torn
// tail or hard corruption.
func readRecord(r io.Reader) (*Record, int64, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("%w: torn frame header: %v", ErrCorrupt, err)
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if plen == 0 || plen > maxRecordLen {
		return nil, 0, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: torn record payload: %v", ErrCorrupt, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("%w: record CRC mismatch (computed %08x, stored %08x)", ErrCorrupt, got, want)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return rec, int64(frameHeaderLen) + int64(plen), nil
}

func decodePayload(p []byte) (*Record, error) {
	d := &decoder{buf: p}
	rec := &Record{Type: RecordType(d.u8()), LSN: d.u64()}
	switch rec.Type {
	case RecAppend, RecAppendPages:
		rec.Rel = d.str()
		rec.SchemaHash = d.u64()
		if rec.Type == RecAppendPages {
			rec.First = d.u64()
		}
		n := d.u32()
		if int64(n) > int64(len(p)) { // cheaper than per-page checks; each page needs >= 1 byte
			return nil, fmt.Errorf("%w: implausible page count %d", ErrCorrupt, n)
		}
		rec.Pages = make([][]byte, 0, n)
		for i := uint32(0); i < n; i++ {
			rec.Pages = append(rec.Pages, d.bytes())
		}
	case RecDelete:
		rec.Rel = d.str()
		rec.Pred = d.str()
	case RecCheckpoint:
		rec.Snapshot = d.str()
		rec.CoverLSN = d.u64()
	default:
		return nil, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, uint8(rec.Type))
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %s record decode: %v", ErrCorrupt, rec.Type, d.err)
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after %s record", ErrCorrupt, len(d.buf)-d.pos, rec.Type)
	}
	return rec, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// decoder is a bounds-checked little-endian cursor; the first failure
// sticks in err and every later read returns zero values.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.buf) {
		d.err = fmt.Errorf("need %d bytes at offset %d of %d", n, d.pos, len(d.buf))
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string {
	b := d.take(2)
	if b == nil {
		return ""
	}
	return string(d.take(int(binary.LittleEndian.Uint16(b))))
}

func (d *decoder) bytes() []byte {
	b := d.take(4)
	if b == nil {
		return nil
	}
	return d.take(int(binary.LittleEndian.Uint32(b)))
}

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/obs"
	"dfdbm/internal/relation"
)

func evSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attr{Name: "id", Type: relation.Int32},
		relation.Attr{Name: "tag", Type: relation.String, Width: 6},
	)
}

// seedCatalog builds the deterministic starting catalog every wal test
// recovers back to: one relation "ev" with 8 tuples.
func seedCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	r := relation.MustNew("ev", evSchema(), 128)
	for i := 0; i < 8; i++ {
		if err := r.Insert(relation.Tuple{relation.IntVal(int64(i)), relation.StringVal("seed")}); err != nil {
			t.Fatal(err)
		}
	}
	c := catalog.New()
	c.Put(r)
	return c
}

// appendRecord builds a RecAppend carrying n freshly built tuples
// starting at id start.
func appendRecord(t testing.TB, start, n int) *Record {
	t.Helper()
	src := relation.MustNew("src", evSchema(), 128)
	for i := 0; i < n; i++ {
		if err := src.Insert(relation.Tuple{relation.IntVal(int64(start + i)), relation.StringVal("wal")}); err != nil {
			t.Fatal(err)
		}
	}
	pages := make([][]byte, 0, src.NumPages())
	for _, pg := range src.Pages() {
		pages = append(pages, pg.Marshal())
	}
	return &Record{Type: RecAppend, Rel: "ev", SchemaHash: SchemaHash(evSchema()), Pages: pages}
}

func deleteRecord(pred string) *Record {
	return &Record{Type: RecDelete, Rel: "ev", Pred: pred}
}

// testOps is the shared op sequence: appends and deletes that exercise
// multi-page payloads, compaction, and predicate replay.
func testOps(t testing.TB) []*Record {
	return []*Record{
		appendRecord(t, 100, 5),
		deleteRecord("id < 2"),
		appendRecord(t, 200, 30), // several pages
		deleteRecord(`(id >= 200) and (id < 210)`),
		appendRecord(t, 300, 3),
		deleteRecord("tag = \"seed\""),
	}
}

// cloneRecord copies a record so the same logical op can be logged
// (which assigns an LSN) and replayed against reference catalogs.
func cloneRecord(r *Record) *Record {
	c := *r
	return &c
}

func saveBytes(t testing.TB, c *catalog.Catalog) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// prefixStates returns the catalog Save bytes after applying each
// prefix of ops to the seed: prefixStates[k] is seed + ops[:k].
func prefixStates(t testing.TB, ops []*Record) [][]byte {
	t.Helper()
	out := make([][]byte, 0, len(ops)+1)
	c := seedCatalog(t)
	out = append(out, saveBytes(t, c))
	for _, op := range ops {
		if _, err := cloneRecord(op).Apply(c); err != nil {
			t.Fatal(err)
		}
		out = append(out, saveBytes(t, c))
	}
	return out
}

// openSeeded opens dir, seeding and checkpointing a fresh directory.
func openSeeded(t testing.TB, dir string, opts Options) (*Log, *catalog.Catalog) {
	t.Helper()
	l, cat, rv, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Fresh {
		cat = seedCatalog(t)
		if err := l.Checkpoint(cat); err != nil {
			t.Fatal(err)
		}
	}
	return l, cat
}

func TestRoundtripRecovery(t *testing.T) {
	dir := t.TempDir()
	l, cat := openSeeded(t, dir, Options{})
	ops := testOps(t)
	for _, op := range ops {
		if _, err := l.Append(op); err != nil {
			t.Fatal(err)
		}
		if _, err := op.Apply(cat); err != nil {
			t.Fatal(err)
		}
	}
	want := saveBytes(t, cat)
	lastLSN := l.LastLSN()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, cat2, rv, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rv.Fresh {
		t.Fatal("recovery reported a fresh directory")
	}
	if rv.Replayed != len(ops) {
		t.Fatalf("replayed %d records, want %d", rv.Replayed, len(ops))
	}
	if rv.TornTail {
		t.Fatal("clean shutdown reported a torn tail")
	}
	if l2.LastLSN() != lastLSN {
		t.Fatalf("recovered LastLSN %d, want %d", l2.LastLSN(), lastLSN)
	}
	if got := saveBytes(t, cat2); !bytes.Equal(got, want) {
		t.Fatal("recovered catalog is not byte-identical to the live one")
	}

	// Appends continue with dense LSNs after recovery.
	lsn, err := l2.Append(appendRecord(t, 900, 1))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != lastLSN+1 {
		t.Fatalf("post-recovery LSN %d, want %d", lsn, lastLSN+1)
	}
}

func TestGroupCommitSharesFsync(t *testing.T) {
	const writers = 8
	reg := obs.NewRegistry(time.Second)
	o := obs.New(nil, reg)
	dir := t.TempDir()

	l, cat := openSeeded(t, dir, Options{Obs: o})

	// Hold the flusher on its first post-seed batch until every writer
	// is either inside that batch or queued behind it, forcing the
	// stragglers into one shared fsync.
	var gateOnce sync.Once
	testFlushGate = func(l *Log, batch []*appendReq) {
		gateOnce.Do(func() {
			for {
				l.mu.Lock()
				n := len(l.queue)
				l.mu.Unlock()
				if n+len(batch) >= writers {
					break
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
	defer func() { testFlushGate = nil }()

	var wg sync.WaitGroup
	var mu sync.Mutex
	lsns := map[uint64]bool{}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lsn, err := l.Append(appendRecord(t, 1000+10*w, 2))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			lsns[lsn] = true
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_ = cat

	// Dense, unique LSNs 2..writers+1 (the checkpoint record took 1).
	if len(lsns) != writers {
		t.Fatalf("%d unique LSNs for %d writers", len(lsns), writers)
	}
	for lsn := uint64(2); lsn <= writers+1; lsn++ {
		if !lsns[lsn] {
			t.Fatalf("LSN %d missing: not dense", lsn)
		}
	}
	// The gate guarantees the writers landed in at most two batches
	// (the held one plus everything queued behind it), so fsyncs must
	// be strictly fewer than records: that is group commit.
	records := reg.Counter("wal.records")
	fsyncs := reg.Counter("wal.fsyncs")
	if records != writers+1 {
		t.Fatalf("wal.records = %d, want %d", records, writers+1)
	}
	if fsyncs >= records {
		t.Fatalf("group commit did not batch: %d fsyncs for %d records", fsyncs, records)
	}
	if max := reg.FindHistogram("wal.group_commit_size").Max(); max < 2 {
		t.Fatalf("largest group commit was %d records, want >= 2", max)
	}
}

func TestRotationAndPrune(t *testing.T) {
	reg := obs.NewRegistry(time.Second)
	dir := t.TempDir()
	// Tiny segments force rotation every record or two.
	l, cat := openSeeded(t, dir, Options{SegmentSize: 512, Obs: obs.New(nil, reg)})
	for i := 0; i < 10; i++ {
		op := appendRecord(t, 1000+10*i, 4)
		if _, err := l.Append(op); err != nil {
			t.Fatal(err)
		}
		if _, err := op.Apply(cat); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSeq(filepath.Join(dir, "wal"), segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments after 10 oversized appends", len(segs))
	}

	// Checkpoint prunes everything the snapshot covers but the last
	// segment, and keeps at most Options.Snapshots snapshot files.
	if err := l.Checkpoint(cat); err != nil {
		t.Fatal(err)
	}
	after, err := listSeq(filepath.Join(dir, "wal"), segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 {
		t.Fatalf("%d segments survive a covering checkpoint, want 1", len(after))
	}
	if pruned := reg.Counter("wal.segments_pruned"); int(pruned) != len(segs)-1 {
		t.Fatalf("wal.segments_pruned = %d, want %d", pruned, len(segs)-1)
	}
	snaps, err := listSeq(dir, snapPrefix, snapSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots retained, want 2", len(snaps))
	}
	want := saveBytes(t, cat)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, cat2, rv, err := Open(dir, Options{SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rv.Replayed != 0 {
		t.Fatalf("replayed %d records after a covering checkpoint, want 0", rv.Replayed)
	}
	if got := saveBytes(t, cat2); !bytes.Equal(got, want) {
		t.Fatal("recovered catalog differs after rotation + prune")
	}
}

func TestCheckpointSkipsWhenClean(t *testing.T) {
	reg := obs.NewRegistry(time.Second)
	dir := t.TempDir()
	l, cat := openSeeded(t, dir, Options{Obs: obs.New(nil, reg)})
	defer l.Close()

	before, err := listSeq(dir, snapPrefix, snapSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(cat); err != nil {
		t.Fatal(err)
	}
	after, err := listSeq(dir, snapPrefix, snapSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("no-op checkpoint wrote a snapshot (%d -> %d)", len(before), len(after))
	}
	if skipped := reg.Counter("wal.checkpoints_skipped"); skipped != 1 {
		t.Fatalf("wal.checkpoints_skipped = %d, want 1", skipped)
	}

	// A write makes the next checkpoint real again.
	op := appendRecord(t, 500, 1)
	if _, err := l.Append(op); err != nil {
		t.Fatal(err)
	}
	if _, err := op.Apply(cat); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(cat); err != nil {
		t.Fatal(err)
	}
	if ckpts := reg.Counter("wal.checkpoints"); ckpts != 2 {
		t.Fatalf("wal.checkpoints = %d, want 2", ckpts)
	}
}

func TestTornTailTruncated(t *testing.T) {
	reg := obs.NewRegistry(time.Second)
	dir := t.TempDir()
	l, cat := openSeeded(t, dir, Options{})
	ops := testOps(t)
	for _, op := range ops {
		if _, err := l.Append(op); err != nil {
			t.Fatal(err)
		}
		if _, err := op.Apply(cat); err != nil {
			t.Fatal(err)
		}
	}
	want := saveBytes(t, cat)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-write: the last segment gains half a record.
	segs, err := listSeq(filepath.Join(dir, "wal"), segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1].path
	full := encode(&Record{Type: RecAppend, Rel: "ev", LSN: 999})
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore, _ := os.Stat(last)

	l2, cat2, rv, err := Open(dir, Options{Obs: obs.New(nil, reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !rv.TornTail {
		t.Fatal("torn tail not detected")
	}
	if rv.TruncatedBytes != int64(len(full)/2) {
		t.Fatalf("truncated %d bytes, want %d", rv.TruncatedBytes, len(full)/2)
	}
	if got := saveBytes(t, cat2); !bytes.Equal(got, want) {
		t.Fatal("recovered catalog differs after torn-tail truncation")
	}
	if n := reg.Counter("wal.torn_tail_truncations"); n != 1 {
		t.Fatalf("wal.torn_tail_truncations = %d, want 1", n)
	}
	sizeAfter, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if sizeAfter.Size() != sizeBefore.Size()-int64(len(full)/2) {
		t.Fatalf("segment not truncated: %d -> %d", sizeBefore.Size(), sizeAfter.Size())
	}
}

// TestCrashPointMatrix walks the crash injector across every write and
// every fsync of the op sequence, in both clean-fail and torn-write
// shapes, and asserts the recovered catalog is always exactly a prefix
// of the acknowledged writes: everything acked survives, nothing is
// ever half-applied.
func TestCrashPointMatrix(t *testing.T) {
	ops := testOps(t)
	states := prefixStates(t, ops)

	type point struct {
		name string
		inj  *Injector
	}
	var points []point
	// Record writes: 1 is the checkpoint record, 2.. are the ops.
	for n := int64(1); n <= int64(len(ops))+1; n++ {
		points = append(points,
			point{fmt.Sprintf("write%d-fail", n), &Injector{FailWrite: n}},
			point{fmt.Sprintf("write%d-torn", n), &Injector{FailWrite: n, Torn: true}},
		)
	}
	for n := int64(1); n <= int64(len(ops))+1; n++ {
		points = append(points, point{fmt.Sprintf("sync%d-fail", n), &Injector{FailSync: n}})
	}

	for _, pt := range points {
		t.Run(pt.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, rv, err := Open(dir, Options{Injector: pt.inj})
			if err != nil {
				t.Fatal(err)
			}
			if !rv.Fresh {
				t.Fatal("expected fresh directory")
			}
			cat := seedCatalog(t)
			acked := 0
			crashed := false
			if err := l.Checkpoint(cat); err != nil {
				if !Injected(err) {
					t.Fatalf("checkpoint failed for a non-injected reason: %v", err)
				}
				crashed = true
			}
			for _, op := range ops {
				if _, err := l.Append(cloneRecord(op)); err != nil {
					if !Injected(err) {
						t.Fatalf("append failed for a non-injected reason: %v", err)
					}
					crashed = true
					break
				}
				acked++
			}
			if !crashed && acked == len(ops) {
				t.Fatal("injector never fired; crash point out of range")
			}
			l.Close()

			_, cat2, rv2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			var got []byte
			if rv2.Fresh {
				// The crash predates the first durable snapshot; an empty
				// directory equals "no writes ever acked".
				if acked != 0 {
					t.Fatalf("fresh recovery but %d writes were acked", acked)
				}
				return
			}
			got = saveBytes(t, cat2)
			// The recovered state must be the acked prefix, or the acked
			// prefix plus the single in-flight record the crash interrupted
			// (durable but unacknowledged — atomic either way).
			if !bytes.Equal(got, states[acked]) &&
				(acked+1 >= len(states) || !bytes.Equal(got, states[acked+1])) {
				t.Fatalf("recovered state is not the acked prefix (%d acked): %s", acked, rv2)
			}
		})
	}
}

// TestWALCorruptionEveryFlipAndTruncation is the log half of the
// corruption property test: for every single-byte flip and every
// truncation of the live segment, recovery must never panic and never
// produce anything but a clean prefix of the logged writes — and
// Inspect must stay total too.
func TestWALCorruptionEveryFlipAndTruncation(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive corruption sweep")
	}
	// Small ops keep the segment short enough to flip every byte, and
	// FsyncNone keeps the thousands of recovery runs off the disk's
	// flush path (crash atomicity is not under test here — decoding is).
	ops := []*Record{
		appendRecord(t, 100, 3),
		deleteRecord("id < 2"),
		appendRecord(t, 200, 2),
	}
	states := prefixStates(t, ops)

	src := t.TempDir()
	l, cat := openSeeded(t, src, Options{Fsync: FsyncNone})
	for _, op := range ops {
		if _, err := l.Append(op); err != nil {
			t.Fatal(err)
		}
		if _, err := op.Apply(cat); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSeq(filepath.Join(src, "wal"), segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected a single segment, got %d", len(segs))
	}
	segBytes, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0].path)
	snaps, err := listSeq(src, snapPrefix, snapSuffix)
	if err != nil {
		t.Fatal(err)
	}
	snapBytes, err := os.ReadFile(snaps[0].path)
	if err != nil {
		t.Fatal(err)
	}
	snapName := filepath.Base(snaps[0].path)

	check := func(t *testing.T, mutated []byte, what string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("recovery panicked on %s: %v", what, r)
			}
		}()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName), snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal", segName), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Inspect(dir, nil); err != nil && errors.Is(err, ErrCorrupt) {
			t.Fatalf("Inspect returned hard corruption on %s: %v", what, err)
		}
		l, cat, _, err := Open(dir, Options{Fsync: FsyncNone})
		if err != nil {
			// A refusal is allowed; silence with a wrong state is not.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open on %s: unexpected error class: %v", what, err)
			}
			return
		}
		l.Close()
		got := saveBytes(t, cat)
		for _, want := range states {
			if bytes.Equal(got, want) {
				return
			}
		}
		t.Fatalf("recovery of %s produced a state that is no prefix of the log", what)
	}

	for i := range segBytes {
		for _, bit := range []byte{0x01, 0x80} {
			mutated := bytes.Clone(segBytes)
			mutated[i] ^= bit
			check(t, mutated, fmt.Sprintf("flip byte %d ^ %#x", i, bit))
		}
	}
	for n := 0; n < len(segBytes); n++ {
		check(t, segBytes[:n], fmt.Sprintf("truncation to %d bytes", n))
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	l, cat := openSeeded(t, dir, Options{SegmentSize: 512})
	ops := testOps(t)
	for _, op := range ops {
		if _, err := l.Append(op); err != nil {
			t.Fatal(err)
		}
		if _, err := op.Apply(cat); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var seen []uint64
	rp, err := Inspect(dir, func(seg string, off int64, rec *Record) {
		seen = append(seen, rec.LSN)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Clean() {
		t.Fatalf("clean directory inspected dirty: %+v", rp)
	}
	if rp.Records != len(ops)+1 || rp.FirstLSN != 1 || rp.LastLSN != uint64(len(ops))+1 {
		t.Fatalf("report records=%d first=%d last=%d, want %d/1/%d",
			rp.Records, rp.FirstLSN, rp.LastLSN, len(ops)+1, len(ops)+1)
	}
	if len(rp.Segments) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(rp.Segments))
	}
	if len(rp.Snapshots) != 1 || rp.Snapshots[0].Err != "" {
		t.Fatalf("snapshot report wrong: %+v", rp.Snapshots)
	}
	for i, lsn := range seen {
		if lsn != uint64(i)+1 {
			t.Fatalf("inspect order broken: record %d has LSN %d", i, lsn)
		}
	}

	// Torn tail shows up as a last-segment error, earlier segments clean.
	segs, _ := listSeq(filepath.Join(dir, "wal"), segPrefix, segSuffix)
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()
	rp2, err := Inspect(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp2.Clean() {
		t.Fatal("torn tail inspected clean")
	}
	if last := rp2.Segments[len(rp2.Segments)-1]; last.Err == "" {
		t.Fatal("torn tail not attributed to the last segment")
	}
}

// TestHardCrashExitCode pins the injector's in-process kill -9: Hard
// exits with 137 through the stubbed exit hook.
func TestHardCrashExitCode(t *testing.T) {
	var code int
	in := &Injector{FailWrite: 1, Hard: true, exit: func(c int) { code = c; panic("exited") }}
	func() {
		defer func() { recover() }()
		in.onWrite(nil, []byte{1, 2})
	}()
	if code != 137 {
		t.Fatalf("hard crash exit code %d, want 137", code)
	}
}

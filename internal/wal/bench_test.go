package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dfdbm/internal/obs"
)

// BenchmarkAppend measures one sequential writer: under FsyncCommit
// this is the fsync-per-write floor that group commit exists to beat;
// under FsyncNone it is the pure framing + page-cache write cost.
func BenchmarkAppend(b *testing.B) {
	for _, pol := range []FsyncPolicy{FsyncCommit, FsyncNone} {
		b.Run("fsync="+pol.String(), func(b *testing.B) {
			l, _ := openSeeded(b, b.TempDir(), Options{Fsync: pol})
			defer l.Close()
			rec := appendRecord(b, 0, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(cloneRecord(rec)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupCommit measures W concurrent writers sharing fsyncs
// through the group-commit batcher. Reported fsyncs/op shows the
// batching factor: with one writer every append pays a full fsync;
// with many, a batch amortizes one fsync across its members.
func BenchmarkGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			reg := obs.NewRegistry(time.Second)
			l, _ := openSeeded(b, b.TempDir(), Options{Fsync: FsyncCommit, Obs: obs.New(nil, reg)})
			defer l.Close()
			rec := appendRecord(b, 0, 8)
			start := reg.Counter("wal.fsyncs")
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / writers
			if per == 0 {
				per = 1
			}
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := l.Append(cloneRecord(rec)); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			ops := float64(per * writers)
			b.ReportMetric(float64(reg.Counter("wal.fsyncs")-start)/ops, "fsyncs/op")
		})
	}
}

// BenchmarkRecovery measures cold wal.Open over a log with n records
// past the snapshot — the replay cost a restart pays per log length.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			l, _ := openSeeded(b, dir, Options{Fsync: FsyncNone})
			rec := appendRecord(b, 0, 8)
			for i := 0; i < n; i++ {
				if _, err := l.Append(cloneRecord(rec)); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l2, cat, rv, err := Open(dir, Options{Fsync: FsyncNone})
				if err != nil {
					b.Fatal(err)
				}
				if cat == nil || rv.Replayed != n {
					b.Fatalf("replayed %d records, want %d", rv.Replayed, n)
				}
				if err := l2.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/heap"
	"dfdbm/internal/obs"
)

// Recovery describes what Open found and did to bring the data
// directory back to a consistent state.
type Recovery struct {
	// Fresh is true when the directory held no snapshot and no log:
	// Open returned a nil catalog for the caller to seed.
	Fresh bool
	// Snapshot is the snapshot file recovery started from ("" when the
	// catalog was rebuilt from the log alone), covering every record up
	// to SnapshotLSN.
	Snapshot    string
	SnapshotLSN uint64
	// SkippedSnapshots counts newer snapshots that failed validation
	// (torn or corrupt) and were passed over for an older one.
	SkippedSnapshots int
	// Replayed counts log records re-applied on top of the snapshot.
	Replayed int
	// TornTail is true when the last segment ended in a torn or corrupt
	// record that was truncated away; TruncatedBytes is how much was
	// cut. A torn tail is the expected shape of a crash mid-write —
	// never an error, because an incompletely written record was by
	// definition never acknowledged.
	TornTail       bool
	TruncatedBytes int64
	// DroppedSegments counts headerless trailing segments removed (a
	// crash during rotation, before the new segment's header was
	// durable — no record can have been written to it).
	DroppedSegments int
	// LastLSN is the highest LSN in the recovered log; appends resume
	// at LastLSN+1.
	LastLSN uint64
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// String summarizes the recovery for logs.
func (rv Recovery) String() string {
	if rv.Fresh {
		return "fresh data directory"
	}
	s := fmt.Sprintf("recovered to LSN %d: snapshot %q (covers %d), %d records replayed",
		rv.LastLSN, rv.Snapshot, rv.SnapshotLSN, rv.Replayed)
	if rv.TornTail {
		s += fmt.Sprintf(", torn tail truncated (%d bytes)", rv.TruncatedBytes)
	}
	if rv.SkippedSnapshots > 0 {
		s += fmt.Sprintf(", %d corrupt snapshots skipped", rv.SkippedSnapshots)
	}
	return s
}

// Open opens (creating if necessary) the data directory, recovers the
// catalog from the newest valid snapshot plus the log tail, and
// returns the log ready for appending. On a fresh directory the
// returned catalog is nil and Recovery.Fresh is true: the caller seeds
// a catalog and calls Checkpoint to establish the first snapshot.
//
// Recovery applies the redo rule: load the newest snapshot that is
// both valid (checksummed) and coverable (the log still holds every
// record after it), then replay records with LSN beyond its cover in
// order. A torn or corrupt record at the very end of the last segment
// is truncated away — it is the unacknowledged write the crash
// interrupted. Corruption anywhere else is a hard ErrCorrupt: the log
// no longer proves what was acknowledged, and refusing to serve beats
// silently dropping acked writes.
func Open(dir string, opts Options) (*Log, *catalog.Catalog, Recovery, error) {
	start := time.Now()
	opts = opts.withDefaults()
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return nil, nil, Recovery{}, err
	}

	l := &Log{dir: dir, walDir: walDir, opts: opts, flusherDone: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	if opts.Obs.MetricsOn() {
		reg := opts.Obs.Registry()
		l.appendHist = reg.Histogram("wal.append_ns", obs.DurationBuckets())
		l.fsyncHist = reg.Histogram("wal.fsync_ns", obs.DurationBuckets())
		l.groupHist = reg.Histogram("wal.group_commit_size", obs.DepthBuckets())
	}

	rv, cat, err := l.recover()
	if err != nil {
		return nil, nil, Recovery{}, err
	}
	rv.Elapsed = time.Since(start)
	if opts.Obs.MetricsOn() {
		reg := opts.Obs.Registry()
		reg.Inc("wal.recoveries", 1)
		reg.Inc("wal.replayed_records", int64(rv.Replayed))
		if rv.TornTail {
			reg.Inc("wal.torn_tail_truncations", 1)
		}
		reg.Inc("wal.snapshots_skipped", int64(rv.SkippedSnapshots))
		reg.Histogram("wal.recovery_ns", obs.DurationBuckets()).ObserveDuration(rv.Elapsed)
	}

	go l.flusher()
	return l, cat, rv, nil
}

// recover scans snapshots and segments, repairs the tail, replays, and
// leaves l positioned to append (seg open, lsn set).
//
// In heap mode (Options.Heap) the recovery base is the heap store
// itself: when a manifest exists the catalog loads from the heap
// files and replay applies only records past each relation's own base
// LSN (deletes advance a single file's base, so the horizon is per
// relation, not global). When no manifest exists yet, the directory
// is a snapshot-engine layout (or brand new): normal snapshot
// recovery rebuilds the resident catalog, which is then migrated —
// every relation adopted into a heap file, the manifest written as
// the atomic commit, and only then the obsolete snapshots removed.
func (l *Log) recover() (Recovery, *catalog.Catalog, error) {
	var rv Recovery

	if l.opts.Heap != nil {
		hs, err := heap.OpenStore(filepath.Join(l.dir, "heap"), l.opts.Heap.Frames, l.opts.Obs)
		if err != nil {
			return rv, nil, err
		}
		l.heap = hs
	}

	segs, err := listSeq(l.walDir, segPrefix, segSuffix)
	if err != nil {
		return rv, nil, err
	}
	// A trailing segment without a durable header is a crash during
	// rotation: openSegment fsyncs the header before any record is
	// written, so nothing acknowledged can live there. Drop it. (Only
	// the last segment may legally be headerless; anywhere else the
	// log is corrupt and the scan below will say so.)
	for len(segs) > 0 {
		last := segs[len(segs)-1]
		ok, err := hasValidHeader(last)
		if err != nil {
			return rv, nil, err
		}
		if ok {
			break
		}
		if err := os.Remove(last.path); err != nil {
			return rv, nil, err
		}
		rv.DroppedSegments++
		segs = segs[:len(segs)-1]
	}

	snaps, err := listSeq(l.dir, snapPrefix, snapSuffix)
	if err != nil {
		return rv, nil, err
	}

	heapBase := l.heap != nil && l.heap.ManifestExists()

	if len(segs) == 0 && len(snaps) == 0 && !heapBase {
		rv.Fresh = true
		if err := l.openSegment(1); err != nil {
			return rv, nil, err
		}
		return rv, nil, nil
	}

	var cat *catalog.Catalog
	var shouldApply func(*Record) bool
	lastLSN := uint64(0)
	if heapBase {
		// The heap files are the recovery base. Replay must reach back
		// to the oldest per-relation base LSN; a later-starting log has
		// lost acknowledged records.
		cat, err = l.heap.LoadCatalog()
		if err != nil {
			return rv, nil, err
		}
		minBase := l.heap.MinBaseLSN()
		if len(segs) > 0 && segs[0].lsn > minBase+1 {
			return rv, nil, fmt.Errorf("%w: log starts at LSN %d but heap files only cover LSN %d",
				ErrCorrupt, segs[0].lsn, minBase)
		}
		rv.Snapshot = heapCheckpointName
		rv.SnapshotLSN = minBase
		lastLSN = l.heap.MaxBaseLSN()
		shouldApply = func(rec *Record) bool {
			if rec.Type == RecCheckpoint {
				return false
			}
			rel, err := cat.Get(rec.Rel)
			if err != nil {
				return true // let Apply surface the unknown-relation error
			}
			// Per-relation horizon: a delete's atomic file rewrite
			// advances one file's base past the global checkpoint cover.
			return rec.LSN > rel.StoreBaseLSN()
		}
	} else {
		// Pick the newest snapshot that loads cleanly AND whose cover
		// reaches back to the log: with dense LSNs, replay can continue
		// from a snapshot covering C iff some surviving segment starts at
		// or below C+1 (or the log is empty entirely).
		for i := len(snaps) - 1; i >= 0; i-- {
			sn := snaps[i]
			if len(segs) > 0 && segs[0].lsn > sn.lsn+1 {
				// The records between this snapshot and the log's start were
				// pruned on the authority of a newer snapshot; this one
				// cannot seed a complete replay.
				break
			}
			c, lerr := catalog.LoadFile(sn.path)
			if lerr != nil {
				if errors.Is(lerr, catalog.ErrCorrupt) {
					rv.SkippedSnapshots++
					continue
				}
				return rv, nil, lerr
			}
			cat = c
			rv.Snapshot = filepath.Base(sn.path)
			rv.SnapshotLSN = sn.lsn
			break
		}
		if cat == nil {
			if len(segs) == 0 || segs[0].lsn != 1 {
				return rv, nil, fmt.Errorf("%w: no usable snapshot and log does not start at LSN 1", ErrCorrupt)
			}
			// Rebuild from nothing: replay the whole log into an empty
			// catalog. Only correct when the log begins at LSN 1.
			cat = catalog.New()
		}
		lastLSN = rv.SnapshotLSN
		cover := rv.SnapshotLSN
		shouldApply = func(rec *Record) bool {
			return rec.LSN > cover && rec.Type != RecCheckpoint
		}
	}

	// Scan and replay every segment, repairing the last one's tail.
	expect := uint64(0) // next LSN the log must present; 0 = not yet known
	for i, sf := range segs {
		isLast := i == len(segs)-1
		res, err := replaySegment(sf, isLast, cat, shouldApply, &expect, l.opts.Obs)
		if err != nil {
			return rv, nil, err
		}
		rv.Replayed += res.replayed
		if res.lastLSN > lastLSN {
			lastLSN = res.lastLSN
		}
		if res.truncatedAt >= 0 {
			rv.TornTail = true
			rv.TruncatedBytes = res.size - res.truncatedAt
			if err := truncateSegment(sf.path, res.truncatedAt, l.opts.Fsync == FsyncCommit); err != nil {
				return rv, nil, err
			}
		}
	}
	rv.LastLSN = lastLSN
	l.lsn = lastLSN
	l.ckptLSN.Store(rv.SnapshotLSN)

	if l.heap != nil && !heapBase {
		// Migrate the snapshot-era directory to heap files. Ordering is
		// the crash safety: adopt every relation into a durable heap
		// file at base LSN lastLSN, commit the set by writing the
		// manifest atomically, and only then drop the snapshots. A crash
		// before the manifest lands replays this same migration; after,
		// recovery trusts the heap files.
		if err := l.heap.Checkpoint(cat, lastLSN); err != nil {
			return rv, nil, fmt.Errorf("wal: heap migration: %w", err)
		}
		for _, sn := range snaps {
			if err := os.Remove(sn.path); err != nil {
				return rv, nil, err
			}
		}
		if err := catalog.SyncDir(l.dir); err != nil {
			return rv, nil, err
		}
		l.ckptGen.Store(cat.Generation())
		l.ckptLSN.Store(lastLSN)
	}

	// Resume appending: reuse the last segment if one survived with
	// room, else start a new one right after the recovered tail.
	if len(segs) > 0 {
		sf := segs[len(segs)-1]
		info, err := os.Stat(sf.path)
		if err != nil {
			return rv, nil, err
		}
		if info.Size() < l.opts.SegmentSize {
			f, err := os.OpenFile(sf.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return rv, nil, err
			}
			l.seg = f
			l.segStart = sf.lsn
			l.segSize = info.Size()
			return rv, cat, nil
		}
	}
	if err := l.openSegment(lastLSN + 1); err != nil {
		return rv, nil, err
	}
	return rv, cat, nil
}

// segScan is the result of replaying (or inspecting) one segment.
type segScan struct {
	firstLSN uint64
	records  int
	replayed int
	lastLSN  uint64
	size     int64 // file size
	// truncatedAt is the offset of the first torn/corrupt byte in the
	// last segment (-1 when the segment read cleanly to EOF).
	truncatedAt int64
}

// hasValidHeader reports whether the segment file carries a complete,
// correct header matching its name.
func hasValidHeader(sf seqFile) (bool, error) {
	f, err := os.Open(sf.path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil
		}
		return false, err
	}
	return checkHeader(hdr, sf.lsn) == nil, nil
}

func checkHeader(hdr [segHeaderLen]byte, nameLSN uint64) error {
	if [8]byte(hdr[:8]) != segMagic {
		return fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != segVersion {
		return fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, v)
	}
	if first := binary.LittleEndian.Uint64(hdr[12:20]); first != nameLSN {
		return fmt.Errorf("%w: segment header LSN %d does not match name %d", ErrCorrupt, first, nameLSN)
	}
	return nil
}

// replaySegment reads one segment, applying the records shouldApply
// selects to cat. For the last segment a torn or corrupt record marks
// the truncation point and ends the scan; anywhere else it is
// ErrCorrupt. expect carries the dense-LSN continuity check across
// segments (0 until the first record fixes it).
func replaySegment(sf seqFile, isLast bool, cat *catalog.Catalog, shouldApply func(*Record) bool, expect *uint64, o *obs.Observer) (segScan, error) {
	res := segScan{truncatedAt: -1}
	f, err := os.Open(sf.path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return res, err
	}
	res.size = info.Size()

	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return res, fmt.Errorf("%w: segment %s: short header: %v", ErrCorrupt, filepath.Base(sf.path), err)
	}
	if err := checkHeader(hdr, sf.lsn); err != nil {
		return res, fmt.Errorf("segment %s: %w", filepath.Base(sf.path), err)
	}
	res.firstLSN = sf.lsn

	off := int64(segHeaderLen)
	for {
		rec, n, err := readRecord(f)
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			if isLast {
				res.truncatedAt = off
				return res, nil
			}
			return res, fmt.Errorf("segment %s at offset %d: %w", filepath.Base(sf.path), off, err)
		}
		// Dense-LSN continuity: every record is its predecessor + 1, and
		// a segment's first record carries the LSN in its name. A CRC-
		// valid record out of sequence means lost records — hard corrupt
		// even in the tail.
		if res.records == 0 && rec.LSN != sf.lsn {
			return res, fmt.Errorf("%w: segment %s: first record LSN %d, want %d", ErrCorrupt, filepath.Base(sf.path), rec.LSN, sf.lsn)
		}
		if *expect != 0 && rec.LSN != *expect {
			return res, fmt.Errorf("%w: segment %s: record LSN %d, want %d", ErrCorrupt, filepath.Base(sf.path), rec.LSN, *expect)
		}
		*expect = rec.LSN + 1
		res.records++
		res.lastLSN = rec.LSN
		off += n

		// Checkpoint records are replay no-ops and are not counted:
		// Replayed reports redone writes.
		if cat != nil && shouldApply(rec) {
			if _, err := rec.Apply(cat); err != nil {
				return res, fmt.Errorf("replaying LSN %d: %w", rec.LSN, err)
			}
			res.replayed++
			recordReplay(o, rec)
		}
	}
}

// recordReplay files one replayed write into the flight recorder so
// /queries/recent shows recovery work alongside live queries.
func recordReplay(o *obs.Observer, rec *Record) {
	if !o.FlightOn() {
		return
	}
	fr := o.Flight()
	// Trace IDs are only unique per process; offsetting by the LSN in
	// a reserved-looking high range keeps replays from colliding with
	// live queries started this run.
	id := 1<<63 | rec.LSN
	fr.Start(obs.QueryRecord{TraceID: id, Engine: "wal", Lane: "recovery", Text: rec.Summary()})
	fr.Finish(id, obs.OutcomeReplayed, nil)
}

// truncateSegment cuts a torn tail at off, making the cut durable
// under the commit fsync policy.
func truncateSegment(path string, off int64, sync bool) error {
	if err := os.Truncate(path, off); err != nil {
		return err
	}
	if !sync {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SegmentInfo describes one log segment for inspection.
type SegmentInfo struct {
	Name     string
	FirstLSN uint64
	LastLSN  uint64
	Records  int
	Bytes    int64
	// Err is the validation failure, "" when the segment is clean. A
	// failure in the final segment is a torn tail (repaired on the
	// next Open); anywhere else it is corruption.
	Err string
}

// SnapshotInfo describes one catalog snapshot for inspection.
type SnapshotInfo struct {
	Name     string
	CoverLSN uint64
	Bytes    int64
	// Err is the validation failure ("" when the snapshot loads).
	Err string
}

// Report is what Inspect finds in a data directory.
type Report struct {
	Segments  []SegmentInfo
	Snapshots []SnapshotInfo
	// Heap holds the per-relation heap-file audits when the directory
	// runs heap-file storage (header CRCs, slot checksums, geometry vs
	// manifest, on-disk sizes). Empty in snapshot mode.
	Heap []heap.FileAudit
	// FirstLSN and LastLSN bound the readable records.
	FirstLSN, LastLSN uint64
	Records           int
}

// Clean reports whether every snapshot, every segment (torn tails
// included), and every heap file validated.
func (rp *Report) Clean() bool {
	for _, s := range rp.Segments {
		if s.Err != "" {
			return false
		}
	}
	for _, s := range rp.Snapshots {
		if s.Err != "" {
			return false
		}
	}
	for _, h := range rp.Heap {
		if h.Err != nil {
			return false
		}
	}
	return true
}

// Inspect scans a data directory read-only — no repairs, no
// truncation — reporting every snapshot and segment and calling fn
// (when non-nil) with each decodable record in LSN order. It backs the
// `dfdbm wal` subcommand and works on a live or crashed directory.
func Inspect(dir string, fn func(segment string, offset int64, rec *Record)) (*Report, error) {
	rp := &Report{}
	walDir := filepath.Join(dir, "wal")

	if heapDir := filepath.Join(dir, "heap"); heap.HasManifest(heapDir) {
		audits, err := heap.Audit(heapDir)
		if err != nil {
			return nil, err
		}
		rp.Heap = audits
	}

	snaps, err := listSeq(dir, snapPrefix, snapSuffix)
	if err != nil {
		return nil, err
	}
	for _, sn := range snaps {
		si := SnapshotInfo{Name: filepath.Base(sn.path), CoverLSN: sn.lsn}
		if info, err := os.Stat(sn.path); err == nil {
			si.Bytes = info.Size()
		}
		if _, err := catalog.LoadFile(sn.path); err != nil {
			si.Err = err.Error()
		}
		rp.Snapshots = append(rp.Snapshots, si)
	}

	segs, err := listSeq(walDir, segPrefix, segSuffix)
	if err != nil {
		if os.IsNotExist(err) {
			return rp, nil
		}
		return nil, err
	}
	expect := uint64(0)
	for _, sf := range segs {
		si, err := inspectSegment(sf, &expect, fn)
		if err != nil {
			return nil, err
		}
		if si.Records > 0 {
			if rp.FirstLSN == 0 {
				rp.FirstLSN = si.FirstLSN
			}
			rp.LastLSN = si.LastLSN
			rp.Records += si.Records
		}
		rp.Segments = append(rp.Segments, si)
	}
	return rp, nil
}

func inspectSegment(sf seqFile, expect *uint64, fn func(string, int64, *Record)) (SegmentInfo, error) {
	name := filepath.Base(sf.path)
	si := SegmentInfo{Name: name, FirstLSN: sf.lsn}
	f, err := os.Open(sf.path)
	if err != nil {
		return si, err
	}
	defer f.Close()
	if info, err := f.Stat(); err == nil {
		si.Bytes = info.Size()
	}

	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		si.Err = fmt.Sprintf("short header: %v", err)
		return si, nil
	}
	if err := checkHeader(hdr, sf.lsn); err != nil {
		si.Err = err.Error()
		return si, nil
	}

	off := int64(segHeaderLen)
	for {
		rec, n, err := readRecord(f)
		if err == io.EOF {
			return si, nil
		}
		if err != nil {
			si.Err = fmt.Sprintf("offset %d: %v", off, err)
			return si, nil
		}
		if si.Records == 0 && rec.LSN != sf.lsn {
			si.Err = fmt.Sprintf("first record LSN %d, want %d", rec.LSN, sf.lsn)
			return si, nil
		}
		if *expect != 0 && rec.LSN != *expect {
			si.Err = fmt.Sprintf("record LSN %d, want %d (lost records)", rec.LSN, *expect)
			return si, nil
		}
		*expect = rec.LSN + 1
		si.Records++
		si.LastLSN = rec.LSN
		if fn != nil {
			fn(name, off, rec)
		}
		off += n
	}
}

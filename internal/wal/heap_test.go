package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/obs"
	"dfdbm/internal/relation"
)

// heapOp is a logical write op that can be applied both to a
// heap-backed catalog (through AppendRecord + Apply, exactly like the
// server) and to a fully resident reference catalog. Byte-identity of
// the two after any op sequence is the storage subsystem's core
// invariant.
type heapOp struct {
	kind     string // "append" or "delete"
	start, n int    // append: first id and tuple count
	pred     string // delete: predicate text
}

func heapTestOps() []heapOp {
	return []heapOp{
		{kind: "append", start: 100, n: 5},
		{kind: "delete", pred: "id < 2"},
		{kind: "append", start: 200, n: 30}, // several pages
		{kind: "delete", pred: `(id >= 200) and (id < 210)`},
		{kind: "append", start: 300, n: 3},
		{kind: "delete", pred: "tag = \"seed\""},
	}
}

func buildSrc(t testing.TB, start, n int) *relation.Relation {
	t.Helper()
	src := relation.MustNew("src", evSchema(), 128)
	for i := 0; i < n; i++ {
		if err := src.Insert(relation.Tuple{relation.IntVal(int64(start + i)), relation.StringVal("wal")}); err != nil {
			t.Fatal(err)
		}
	}
	return src
}

// applyHeapOp builds the op's redo record against cat's live state
// (AppendRecord's physical images depend on the destination's current
// page layout), logs it when l is non-nil, and applies it — the same
// log-then-apply order the server uses.
func applyHeapOp(t testing.TB, l *Log, cat *catalog.Catalog, op heapOp) error {
	t.Helper()
	var rec *Record
	switch op.kind {
	case "append":
		dst, err := cat.Get("ev")
		if err != nil {
			t.Fatal(err)
		}
		rec, err = AppendRecord(dst, buildSrc(t, op.start, op.n))
		if err != nil {
			t.Fatal(err)
		}
	case "delete":
		rec = &Record{Type: RecDelete, Rel: "ev", Pred: op.pred}
	default:
		t.Fatalf("unknown op kind %q", op.kind)
	}
	if l != nil {
		if _, err := l.Append(rec); err != nil {
			return err
		}
	}
	if _, err := rec.Apply(cat); err != nil {
		t.Fatalf("apply %s: %v", op.kind, err)
	}
	return nil
}

// heapPrefixStates returns resident-reference catalog Save bytes after
// each prefix of ops.
func heapPrefixStates(t testing.TB, ops []heapOp) [][]byte {
	t.Helper()
	out := make([][]byte, 0, len(ops)+1)
	c := seedCatalog(t)
	out = append(out, saveBytes(t, c))
	for _, op := range ops {
		applyHeapOp(t, nil, c, op)
		out = append(out, saveBytes(t, c))
	}
	return out
}

// requirePagesEqual asserts got (heap-backed) and want (resident) hold
// byte-identical pages — the "identical to in-memory Relation by
// construction" contract, checked at the marshalled-page level so slot
// layout drift cannot hide behind tuple-level equality.
func requirePagesEqual(t testing.TB, got, want *relation.Relation) {
	t.Helper()
	if got.NumPages() != want.NumPages() {
		t.Fatalf("page count %d, want %d", got.NumPages(), want.NumPages())
	}
	if got.Cardinality() != want.Cardinality() {
		t.Fatalf("cardinality %d, want %d", got.Cardinality(), want.Cardinality())
	}
	for i := 0; i < want.NumPages(); i++ {
		gp, err := got.CopyPage(i)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if !bytes.Equal(gp.Marshal(), want.Page(i).Marshal()) {
			t.Fatalf("page %d differs between heap file and resident reference", i)
		}
	}
}

func heapOptions(frames int) Options {
	return Options{Heap: &HeapOptions{Frames: frames}}
}

func TestHeapRoundtripRecovery(t *testing.T) {
	dir := t.TempDir()
	l, cat := openSeeded(t, dir, heapOptions(4))
	ops := heapTestOps()
	states := heapPrefixStates(t, ops)
	for _, op := range ops {
		if err := applyHeapOp(t, l, cat, op); err != nil {
			t.Fatal(err)
		}
	}
	rel, err := cat.Get("ev")
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Stored() {
		t.Fatal("checkpointed relation is not heap-backed")
	}
	if got := saveBytes(t, cat); !bytes.Equal(got, states[len(ops)]) {
		t.Fatal("live heap-backed catalog differs from resident reference")
	}
	lastLSN := l.LastLSN()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Close does not flush dirty frames: reopening is a genuine
	// recovery, replaying the log tail into the heap file.
	l2, cat2, rv, err := Open(dir, heapOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rv.Fresh {
		t.Fatal("heap recovery reported a fresh directory")
	}
	if rv.Snapshot != "heap" {
		t.Fatalf("recovery base %q, want \"heap\"", rv.Snapshot)
	}
	if l2.LastLSN() != lastLSN {
		t.Fatalf("recovered LastLSN %d, want %d", l2.LastLSN(), lastLSN)
	}
	if got := saveBytes(t, cat2); !bytes.Equal(got, states[len(ops)]) {
		t.Fatal("recovered heap catalog is not byte-identical to the reference")
	}
	ref := seedCatalog(t)
	for _, op := range ops {
		applyHeapOp(t, nil, ref, op)
	}
	wantRel, _ := ref.Get("ev")
	gotRel, _ := cat2.Get("ev")
	requirePagesEqual(t, gotRel, wantRel)
}

// TestHeapCheckpointSkipsReplay pins the per-relation base-LSN skip: a
// checkpoint advances the heap file's recovery horizon, so reopening
// replays only records logged after it.
func TestHeapCheckpointSkipsReplay(t *testing.T) {
	dir := t.TempDir()
	l, cat := openSeeded(t, dir, heapOptions(4))
	ops := heapTestOps()
	for i, op := range ops {
		if err := applyHeapOp(t, l, cat, op); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			if err := l.Checkpoint(cat); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := saveBytes(t, cat)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, cat2, rv, err := Open(dir, heapOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if rv.Replayed >= len(ops) {
		t.Fatalf("replayed %d records despite a mid-sequence checkpoint", rv.Replayed)
	}
	if got := saveBytes(t, cat2); !bytes.Equal(got, want) {
		t.Fatal("recovered catalog differs after checkpointed recovery")
	}
}

// TestHeapMigration opens a snapshot-mode data directory in heap mode
// and expects a one-shot migration: relations adopted into heap files,
// manifest committed, snapshot files removed, state unchanged.
func TestHeapMigration(t *testing.T) {
	dir := t.TempDir()
	l, cat := openSeeded(t, dir, Options{}) // snapshot mode
	ops := heapTestOps()
	for _, op := range ops {
		if err := applyHeapOp(t, l, cat, op); err != nil {
			t.Fatal(err)
		}
	}
	want := saveBytes(t, cat)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, cat2, rv, err := Open(dir, heapOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, cat2); !bytes.Equal(got, want) {
		t.Fatal("migrated catalog differs from pre-migration state")
	}
	if rv.Fresh {
		t.Fatal("migration reported fresh")
	}
	if _, err := os.Stat(filepath.Join(dir, "heap", "manifest")); err != nil {
		t.Fatalf("no heap manifest after migration: %v", err)
	}
	snaps, err := listSeq(dir, snapPrefix, snapSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Fatalf("%d snapshot files survive migration, want 0", len(snaps))
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second heap open starts from the migrated manifest: no replay.
	l3, cat3, rv3, err := Open(dir, heapOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if rv3.Replayed != 0 {
		t.Fatalf("replayed %d records after migration checkpoint, want 0", rv3.Replayed)
	}
	if got := saveBytes(t, cat3); !bytes.Equal(got, want) {
		t.Fatal("post-migration reopen differs")
	}
}

// TestHeapCrashPointMatrix walks the crash injector across every log
// write and fsync of the op sequence in heap mode, including torn
// writes, and asserts recovery always lands on the acked prefix (or
// the acked prefix plus the single durable-but-unacked in-flight
// record).
func TestHeapCrashPointMatrix(t *testing.T) {
	ops := heapTestOps()
	states := heapPrefixStates(t, ops)

	type point struct {
		name string
		inj  *Injector
	}
	var points []point
	for n := int64(1); n <= int64(len(ops))+1; n++ {
		points = append(points,
			point{fmt.Sprintf("write%d-fail", n), &Injector{FailWrite: n}},
			point{fmt.Sprintf("write%d-torn", n), &Injector{FailWrite: n, Torn: true}},
		)
	}
	for n := int64(1); n <= int64(len(ops))+1; n++ {
		points = append(points, point{fmt.Sprintf("sync%d-fail", n), &Injector{FailSync: n}})
	}

	for _, pt := range points {
		t.Run(pt.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := heapOptions(4)
			opts.Injector = pt.inj
			l, _, rv, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !rv.Fresh {
				t.Fatal("expected fresh directory")
			}
			cat := seedCatalog(t)
			acked := 0
			crashed := false
			if err := l.Checkpoint(cat); err != nil {
				if !Injected(err) {
					t.Fatalf("checkpoint failed for a non-injected reason: %v", err)
				}
				crashed = true
			}
			if !crashed {
				for _, op := range ops {
					if err := applyHeapOp(t, l, cat, op); err != nil {
						if !Injected(err) {
							t.Fatalf("append failed for a non-injected reason: %v", err)
						}
						crashed = true
						break
					}
					acked++
				}
			}
			if !crashed && acked == len(ops) {
				t.Fatal("injector never fired; crash point out of range")
			}
			l.Close()

			_, cat2, rv2, err := Open(dir, heapOptions(4))
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if rv2.Fresh {
				if acked != 0 {
					t.Fatalf("fresh recovery but %d writes were acked", acked)
				}
				return
			}
			got := saveBytes(t, cat2)
			if !bytes.Equal(got, states[acked]) &&
				(acked+1 >= len(states) || !bytes.Equal(got, states[acked+1])) {
				t.Fatalf("recovered state is not the acked prefix (%d acked): %s", acked, rv2)
			}
		})
	}
}

// TestHeapPropertyShadow is the randomized storage property test: a
// heap-backed catalog behind a 4-frame buffer pool (well below the
// working set, so eviction and write-back churn constantly) and a
// fully resident shadow catalog receive the same random interleaving
// of appends, deletes, scans, and checkpoints. After every op the
// heap-backed relation must hold byte-identical pages; after a crash
// (unflushed Close) and recovery, still identical.
func TestHeapPropertyShadow(t *testing.T) {
	const opsN = 80
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	l, cat := openSeeded(t, dir, heapOptions(4))
	shadow := seedCatalog(t)

	next := 1000
	for i := 0; i < opsN; i++ {
		var op heapOp
		switch k := rng.Intn(10); {
		case k < 5: // append 1..40 tuples
			op = heapOp{kind: "append", start: next, n: 1 + rng.Intn(40)}
			next += op.n
		case k < 7: // range delete
			lo := rng.Intn(next)
			op = heapOp{kind: "delete", pred: fmt.Sprintf("(id >= %d) and (id < %d)", lo, lo+1+rng.Intn(50))}
		case k < 8: // checkpoint mid-stream
			if err := l.Checkpoint(cat); err != nil {
				t.Fatal(err)
			}
			continue
		default: // full scan under pin/unpin
			rel, _ := cat.Get("ev")
			want, _ := shadow.Get("ev")
			requirePagesEqual(t, rel, want)
			continue
		}
		if err := applyHeapOp(t, l, cat, op); err != nil {
			t.Fatal(err)
		}
		applyHeapOp(t, nil, shadow, op)

		rel, _ := cat.Get("ev")
		want, _ := shadow.Get("ev")
		requirePagesEqual(t, rel, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-equivalent close, then recovery: still byte-identical.
	_, cat2, _, err := Open(dir, heapOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := cat2.Get("ev")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := shadow.Get("ev")
	requirePagesEqual(t, rel, want)
}

// TestHeapEvictionPressure builds a relation well past the frame
// budget and proves the pool actually evicted (the larger-than-memory
// acceptance signal) while scans stay correct.
func TestHeapEvictionPressure(t *testing.T) {
	reg := obs.NewRegistry(time.Second)
	dir := t.TempDir()
	opts := heapOptions(2)
	opts.Obs = obs.New(nil, reg)
	l, cat := openSeeded(t, dir, opts)
	defer l.Close()

	shadow := seedCatalog(t)
	for i := 0; i < 6; i++ {
		op := heapOp{kind: "append", start: 1000 + 100*i, n: 30}
		if err := applyHeapOp(t, l, cat, op); err != nil {
			t.Fatal(err)
		}
		applyHeapOp(t, nil, shadow, op)
	}
	rel, _ := cat.Get("ev")
	if rel.NumPages() <= 2 {
		t.Fatalf("relation has %d pages; does not exceed the 2-frame pool", rel.NumPages())
	}
	want, _ := shadow.Get("ev")
	requirePagesEqual(t, rel, want)
	if ev := reg.Counter("bufpool.evictions"); ev == 0 {
		t.Fatal("bufpool.evictions = 0 for a working set above the frame budget")
	}
	if h := reg.Counter("bufpool.hits"); h == 0 {
		t.Fatal("bufpool.hits = 0; scans never hit the pool")
	}
}

// TestHeapInspectAudit covers the wal-inspect heap audit: a clean
// directory reports per-relation heap files, and payload corruption
// surfaces as a file error without panicking.
func TestHeapInspectAudit(t *testing.T) {
	dir := t.TempDir()
	l, cat := openSeeded(t, dir, heapOptions(4))
	for _, op := range heapTestOps() {
		if err := applyHeapOp(t, l, cat, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(cat); err != nil {
		t.Fatal(err)
	}
	wantTuples := 0
	if rel, err := cat.Get("ev"); err == nil {
		wantTuples = rel.Cardinality()
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rp, err := Inspect(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Clean() {
		t.Fatalf("clean heap directory inspected dirty: %+v", rp)
	}
	if len(rp.Heap) != 1 || rp.Heap[0].Rel != "ev" {
		t.Fatalf("heap audit missing relation: %+v", rp.Heap)
	}
	if rp.Heap[0].Tuples != wantTuples {
		t.Fatalf("audit counted %d tuples, want %d", rp.Heap[0].Tuples, wantTuples)
	}
	if rp.Heap[0].Bytes <= 0 {
		t.Fatal("audit reported a zero-byte heap file")
	}

	// Flip one payload byte in the heap file: audit must attribute the
	// corruption to the file, and Clean must go false.
	path := rp.Heap[0].Path
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Data slots start at 4096; byte 20 of the first slot sits inside
	// its page payload (16-byte slot header, then the blob).
	blob[4096+20] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	rp2, err := Inspect(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp2.Clean() {
		t.Fatal("corrupt heap file inspected clean")
	}
	if len(rp2.Heap) != 1 || rp2.Heap[0].Err == nil {
		t.Fatalf("corruption not attributed to the heap file: %+v", rp2.Heap)
	}
}

package wal

import (
	"dfdbm/internal/relation"
)

// AppendRecord builds the redo record for appending src's tuples to
// dst, choosing the representation by dst's storage mode:
//
//   - Resident dst: a logical RecAppend carrying src's non-empty page
//     blobs. Replay re-inserts the tuples; the destination's own page
//     layout is rebuilt by the insert path.
//   - Stored dst: a physical RecAppendPages carrying full post-images
//     of every destination page the append touches, starting at the
//     last partial page (or the append point when the last page is
//     full). The images are computed with the same fill-then-grow
//     discipline InsertRaw uses, so applying the record produces
//     byte-identical pages — and because replay re-installs whole
//     slots, it also repairs any slot torn by a crashed eviction
//     write-back.
//
// The record is not yet applied: callers log it (the commit point)
// and then run Record.Apply, exactly like recovery will.
func AppendRecord(dst, src *relation.Relation) (*Record, error) {
	rec := &Record{Rel: dst.Name(), SchemaHash: SchemaHash(dst.Schema())}
	if !dst.Stored() {
		rec.Type = RecAppend
		err := src.EachPage(func(pg *relation.Page) error {
			if !pg.Empty() {
				rec.Pages = append(rec.Pages, pg.Marshal())
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return rec, nil
	}

	rec.Type = RecAppendPages
	n := dst.NumPages()
	rec.First = uint64(n)
	if src.Cardinality() == 0 {
		return rec, nil // no-op append: no images, Apply installs nothing
	}
	capacity := (dst.PageSize() - relation.PageHeaderLen) / dst.Schema().TupleLen()
	var cur *relation.Page
	if n > 0 && dst.PageTuples(n-1) < capacity {
		// The append starts by filling the last partial page: its
		// post-image is pre-append content plus new tuples.
		seed, err := dst.CopyPage(n - 1)
		if err != nil {
			return nil, err
		}
		cur = seed
		rec.First = uint64(n - 1)
	}
	appendImage := func() {
		rec.Pages = append(rec.Pages, cur.Marshal())
		cur = nil
	}
	err := src.EachPage(func(pg *relation.Page) error {
		var insertErr error
		pg.EachRaw(func(raw []byte) bool {
			if cur == nil {
				cur = relation.MustNewPage(dst.PageSize(), dst.Schema().TupleLen())
			}
			if insertErr = cur.AppendRaw(raw); insertErr != nil {
				return false
			}
			if cur.Full() {
				appendImage()
			}
			return true
		})
		return insertErr
	})
	if err != nil {
		return nil, err
	}
	if cur != nil && !cur.Empty() {
		appendImage()
	}
	return rec, nil
}

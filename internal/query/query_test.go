package query

import (
	"strings"
	"testing"

	"dfdbm/internal/catalog"
	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

// testCatalog builds a small catalog:
//
//	parts(pid, weight, pname)   12 tuples
//	orders(oid, pid, qty)       30 tuples
//	archive(oid, pid, qty)      empty, same layout as orders
func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()

	parts := relation.MustNew("parts", relation.MustSchema(
		relation.Attr{Name: "pid", Type: relation.Int32},
		relation.Attr{Name: "weight", Type: relation.Int32},
		relation.Attr{Name: "pname", Type: relation.String, Width: 8},
	), 256)
	for i := 0; i < 12; i++ {
		if err := parts.Insert(relation.Tuple{
			relation.IntVal(int64(i)),
			relation.IntVal(int64(i * 10)),
			relation.StringVal("p"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	cat.Put(parts)

	orders := relation.MustNew("orders", relation.MustSchema(
		relation.Attr{Name: "oid", Type: relation.Int32},
		relation.Attr{Name: "pid", Type: relation.Int32},
		relation.Attr{Name: "qty", Type: relation.Int32},
	), 256)
	for i := 0; i < 30; i++ {
		if err := orders.Insert(relation.Tuple{
			relation.IntVal(int64(1000 + i)),
			relation.IntVal(int64(i % 12)),
			relation.IntVal(int64(i % 5)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	cat.Put(orders)

	archive := relation.MustNew("archive", orders.Schema(), 256)
	cat.Put(archive)
	return cat
}

func TestBindAssignsPostorderIDs(t *testing.T) {
	cat := testCatalog(t)
	root := Join(
		Restrict(Scan("orders"), pred.Compare{Attr: "qty", Op: pred.GT, Const: relation.IntVal(2)}),
		Scan("parts"),
		pred.Equi("pid", "pid"),
	)
	tr, err := Bind(root, cat)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if tr.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", tr.NumNodes())
	}
	for i, n := range tr.Nodes() {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		for _, in := range n.Inputs {
			if in.ID >= n.ID {
				t.Errorf("child %d not before parent %d", in.ID, n.ID)
			}
		}
	}
	if tr.Root() != root || tr.Node(root.ID) != root {
		t.Error("root bookkeeping wrong")
	}
}

func TestBindComputesSchemas(t *testing.T) {
	cat := testCatalog(t)
	root := Project(
		Join(Scan("orders"), Scan("parts"), pred.Equi("pid", "pid")),
		"oid", "pname",
	)
	if _, err := Bind(root, cat); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	join := root.Inputs[0]
	// orders ⋈ parts: oid, pid, qty, parts.pid (collision), weight, pname.
	if join.Schema().NumAttrs() != 6 {
		t.Errorf("join schema %s, want 6 attrs", join.Schema())
	}
	if !join.Schema().HasAttr("parts.pid") {
		t.Errorf("collision not prefixed with inner label: %s", join.Schema())
	}
	if root.Schema().NumAttrs() != 2 || !root.Schema().HasAttr("pname") {
		t.Errorf("project schema %s", root.Schema())
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		name string
		root *Node
	}{
		{"nil root", nil},
		{"missing relation", Scan("nope")},
		{"restrict bad attr", Restrict(Scan("parts"), pred.Compare{Attr: "zz", Op: pred.EQ, Const: relation.IntVal(1)})},
		{"restrict nil pred", &Node{Kind: OpRestrict, Inputs: []*Node{Scan("parts")}}},
		{"join bad attr", Join(Scan("parts"), Scan("orders"), pred.Equi("zz", "pid"))},
		{"project missing col", Project(Scan("parts"), "zz")},
		{"project no cols", &Node{Kind: OpProject, Inputs: []*Node{Scan("parts")}}},
		{"append layout mismatch", Append("parts", Scan("orders"))},
		{"append missing dst", Append("nope", Scan("orders"))},
		{"delete missing rel", Delete("nope", pred.TruePred)},
		{"delete nil pred", &Node{Kind: OpDelete, Rel: "parts"}},
		{"append not at root", Restrict(Append("archive", Scan("orders")), pred.TruePred)},
		{"bad arity", &Node{Kind: OpJoin, Inputs: []*Node{Scan("parts")}}},
		{"unknown kind", &Node{Kind: OpKind(77)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Bind(c.root, cat); err == nil {
				t.Error("Bind succeeded, want error")
			}
		})
	}
}

func TestAnalyzeFootprint(t *testing.T) {
	root := Append("archive",
		Join(Scan("orders"), Scan("parts"), pred.Equi("pid", "pid")))
	// Note: layout mismatch makes this unbindable, but Analyze works on
	// unbound trees.
	fp := Analyze(root)
	if strings.Join(fp.Reads, ",") != "orders,parts" {
		t.Errorf("Reads = %v", fp.Reads)
	}
	if strings.Join(fp.Writes, ",") != "archive" {
		t.Errorf("Writes = %v", fp.Writes)
	}
	del := Analyze(Delete("orders", pred.TruePred))
	if strings.Join(del.Reads, ",") != "orders" || strings.Join(del.Writes, ",") != "orders" {
		t.Errorf("Delete footprint = %+v", del)
	}
}

func TestFootprintConflicts(t *testing.T) {
	readOnly := Analyze(Scan("orders"))
	readOnly2 := Analyze(Scan("orders"))
	writer := Analyze(Delete("orders", pred.TruePred))
	otherWriter := Analyze(Delete("parts", pred.TruePred))
	if readOnly.Conflicts(readOnly2) {
		t.Error("two readers conflict")
	}
	if !readOnly.Conflicts(writer) || !writer.Conflicts(readOnly) {
		t.Error("reader/writer should conflict")
	}
	if !writer.Conflicts(writer) {
		t.Error("writer/writer should conflict")
	}
	if writer.Conflicts(otherWriter) {
		t.Error("writers of different relations conflict")
	}
}

func TestShapeAndDepth(t *testing.T) {
	root := Join(
		Restrict(Scan("a"), pred.TruePred),
		Join(Restrict(Scan("b"), pred.TruePred), Restrict(Scan("c"), pred.TruePred), pred.Equi("x", "y")),
		pred.Equi("x", "y"),
	)
	s := ShapeOf(root)
	if s.Scans != 3 || s.Restricts != 3 || s.Joins != 2 {
		t.Errorf("Shape = %+v", s)
	}
	if d := Depth(root); d != 4 {
		t.Errorf("Depth = %d, want 4", d)
	}
}

func TestTreeString(t *testing.T) {
	cat := testCatalog(t)
	src := `project(join(restrict(orders, qty > 2), parts, pid = pid), [oid, pname])`
	root := MustParse(src)
	tr, err := Bind(root, cat)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	// Round trip: rendering must reparse to an equivalent tree.
	again, err := Parse(tr.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", tr.String(), err)
	}
	if _, err := Bind(again, cat); err != nil {
		t.Errorf("rebind of rendered tree: %v", err)
	}
}

func TestOpKindString(t *testing.T) {
	want := map[OpKind]string{
		OpScan: "scan", OpRestrict: "restrict", OpJoin: "join",
		OpProject: "project", OpAppend: "append", OpDelete: "delete",
		OpKind(99): "op(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(k), k.String(), s)
		}
	}
}

package query

import (
	"fmt"
	"strings"
)

// Render draws a query tree as ASCII art in the style of the paper's
// Figure 2.1 — operators above their operands, leaves at the bottom:
//
//	project [oid, pname]
//	└─ join on pid = pid
//	   ├─ restrict qty > 10
//	   │  └─ orders
//	   └─ parts
//
// Bound trees annotate each node with its node ID and output schema
// size; unbound trees render structure only.
func Render(root *Node) string {
	var b strings.Builder
	renderNode(&b, root, "", "")
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(describe(n))
	b.WriteByte('\n')
	for i, in := range n.Inputs {
		last := i == len(n.Inputs)-1
		connector, next := "├─ ", "│  "
		if last {
			connector, next = "└─ ", "   "
		}
		renderNode(b, in, childPrefix+connector, childPrefix+next)
	}
}

func describe(n *Node) string {
	var s string
	switch n.Kind {
	case OpScan:
		s = n.Rel
	case OpRestrict:
		s = fmt.Sprintf("restrict %s", n.Pred)
	case OpJoin:
		s = fmt.Sprintf("join on %s", n.Join)
	case OpProject:
		s = fmt.Sprintf("project [%s]", strings.Join(n.Cols, ", "))
	case OpAppend:
		s = fmt.Sprintf("append into %s", n.Rel)
	case OpDelete:
		s = fmt.Sprintf("delete from %s where %s", n.Rel, n.Pred)
	default:
		s = n.Kind.String()
	}
	if n.Schema() != nil {
		s += fmt.Sprintf("   (node %d, %d-byte tuples)", n.ID, n.Schema().TupleLen())
	}
	return s
}

// RenderTree draws a bound tree.
func RenderTree(t *Tree) string { return Render(t.Root()) }

package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

// Parse builds an (unbound) query tree from the textual query language:
//
//	query    := node
//	node     := IDENT
//	          | 'restrict' '(' node ',' predicate ')'
//	          | 'join'     '(' node ',' node ',' joincond ')'
//	          | 'project'  '(' node ',' '[' IDENT {',' IDENT} ']' ')'
//	          | 'append'   '(' IDENT ',' node ')'
//	          | 'delete'   '(' IDENT ',' predicate ')'
//	predicate:= conj {'or' conj}
//	conj     := unary {'and' unary}
//	unary    := 'not' unary | '(' predicate ')' | cmp | 'true' | 'false'
//	cmp      := IDENT OP (NUMBER | STRING | IDENT)
//	joincond := jterm {'and' jterm}
//	jterm    := IDENT OP IDENT
//	OP       := '=' '==' '!=' '<>' '<' '<=' '>' '>='
//
// A bare IDENT node scans the catalog relation of that name. Example:
//
//	project(join(restrict(orders, qty > 10), parts, pid = id), [pid, name])
func Parse(src string) (*Node, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input at %q", p.tok.text)
	}
	return n, nil
}

// MustParse is Parse but panics on error; for statically known queries
// in tests and examples.
func MustParse(src string) *Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp     // comparison operator
	tokLParen // (
	tokRParen // )
	tokLBrack // [
	tokRBrack // ]
	tokComma  // ,
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) lex() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "("}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")"}, nil
	case c == '[':
		l.pos++
		return token{tokLBrack, "["}, nil
	case c == ']':
		l.pos++
		return token{tokRBrack, "]"}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ","}, nil
	case c == '"':
		end := l.pos + 1
		for end < len(l.src) && l.src[end] != '"' {
			end++
		}
		if end >= len(l.src) {
			return token{}, fmt.Errorf("query: unterminated string at %d", l.pos)
		}
		s := l.src[l.pos+1 : end]
		l.pos = end + 1
		return token{tokString, s}, nil
	case strings.ContainsRune("=!<>", rune(c)):
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && strings.ContainsRune("=<>", rune(l.src[l.pos])) {
			l.pos++
		}
		return token{tokOp, l.src[start:l.pos]}, nil
	case c == '-' || c == '+' || unicode.IsDigit(rune(c)):
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos]}, nil
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '.' {
				break
			}
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos]}, nil
	default:
		return token{}, fmt.Errorf("query: unexpected character %q at %d", c, l.pos)
	}
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lex.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, fmt.Errorf("query: expected %s, found %q", what, p.tok.text)
	}
	t := p.tok
	if err := p.next(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) parseNode() (*Node, error) {
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("query: expected operator or relation name, found %q", p.tok.text)
	}
	name := p.tok.text
	if err := p.next(); err != nil {
		return nil, err
	}
	switch name {
	case "restrict":
		return p.parseRestrict()
	case "join":
		return p.parseJoin()
	case "project":
		return p.parseProject()
	case "append":
		return p.parseAppend()
	case "delete":
		return p.parseDelete()
	default:
		return Scan(name), nil
	}
}

func (p *parser) parseRestrict() (*Node, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	in, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	pr, err := p.parsePredicate()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return Restrict(in, pr), nil
}

func (p *parser) parseJoin() (*Node, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	outer, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	inner, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	cond, err := p.parseJoinCond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return Join(outer, inner, cond), nil
}

func (p *parser) parseProject() (*Node, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	in, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrack, "["); err != nil {
		return nil, err
	}
	var cols []string
	for {
		t, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return nil, err
		}
		cols = append(cols, t.text)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokRBrack, "]"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return Project(in, cols...), nil
}

func (p *parser) parseAppend() (*Node, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	dst, err := p.expect(tokIdent, "destination relation")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	in, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return Append(dst.text, in), nil
}

func (p *parser) parseDelete() (*Node, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	rel, err := p.expect(tokIdent, "target relation")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	pr, err := p.parsePredicate()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return Delete(rel.text, pr), nil
}

func (p *parser) parsePredicate() (pred.Pred, error) {
	left, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	kids := []pred.Pred{left}
	for p.tok.kind == tokIdent && p.tok.text == "or" {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return pred.Disj(kids...), nil
}

func (p *parser) parseConj() (pred.Pred, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []pred.Pred{left}
	for p.tok.kind == tokIdent && p.tok.text == "and" {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return pred.Conj(kids...), nil
}

func (p *parser) parseUnary() (pred.Pred, error) {
	switch {
	case p.tok.kind == tokIdent && p.tok.text == "not":
		if err := p.next(); err != nil {
			return nil, err
		}
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return pred.Not{Kid: kid}, nil
	case p.tok.kind == tokIdent && p.tok.text == "true":
		if err := p.next(); err != nil {
			return nil, err
		}
		return pred.TruePred, nil
	case p.tok.kind == tokIdent && p.tok.text == "false":
		if err := p.next(); err != nil {
			return nil, err
		}
		return pred.FalsePred, nil
	case p.tok.kind == tokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		inner, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return p.parseCmp()
	}
}

func (p *parser) parseCmp() (pred.Pred, error) {
	attr, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return nil, err
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	op, err := pred.ParseOp(opTok.text)
	if err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokNumber:
		v, err := parseNumber(p.tok.text)
		if err != nil {
			return nil, err
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return pred.Compare{Attr: attr.text, Op: op, Const: v}, nil
	case tokString:
		s := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		return pred.Compare{Attr: attr.text, Op: op, Const: relation.StringVal(s)}, nil
	case tokIdent:
		other := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		return pred.CompareAttrs{A: attr.text, Op: op, B: other}, nil
	default:
		return nil, fmt.Errorf("query: expected constant or attribute after %q %s", attr.text, op)
	}
}

func (p *parser) parseJoinCond() (pred.JoinCond, error) {
	var cond pred.JoinCond
	for {
		left, err := p.expect(tokIdent, "outer attribute")
		if err != nil {
			return cond, err
		}
		opTok, err := p.expect(tokOp, "comparison operator")
		if err != nil {
			return cond, err
		}
		op, err := pred.ParseOp(opTok.text)
		if err != nil {
			return cond, err
		}
		right, err := p.expect(tokIdent, "inner attribute")
		if err != nil {
			return cond, err
		}
		cond.Terms = append(cond.Terms, pred.JoinTerm{Left: left.text, Op: op, Right: right.text})
		if p.tok.kind == tokIdent && p.tok.text == "and" {
			if err := p.next(); err != nil {
				return cond, err
			}
			continue
		}
		return cond, nil
	}
}

func parseNumber(s string) (relation.Value, error) {
	if !strings.ContainsAny(s, ".eE") {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return relation.Value{}, fmt.Errorf("query: bad integer %q: %w", s, err)
		}
		return relation.IntVal(n), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return relation.Value{}, fmt.Errorf("query: bad number %q: %w", s, err)
	}
	return relation.FloatVal(f), nil
}

package query

import (
	"fmt"
	"strings"

	"dfdbm/internal/catalog"
	"dfdbm/internal/stats"
)

// EdgeMode says how one producer→consumer edge of a query tree moves
// its pages: pipelined (the consumer sees each result page as the
// producer finishes it) or materialized (the producer's whole output
// is buffered before the consumer starts). Pipelining is the data-flow
// default; materializing trades latency and memory for the ability to
// rescan the buffered operand without recomputing it — the classic
// pipeline-vs-materialize decision, made here per edge.
type EdgeMode uint8

const (
	// EdgePipeline streams pages to the consumer as they are produced.
	EdgePipeline EdgeMode = iota
	// EdgeMaterialize buffers the producer's complete output first.
	EdgeMaterialize
)

// String returns "pipeline" or "materialize".
func (m EdgeMode) String() string {
	if m == EdgeMaterialize {
		return "materialize"
	}
	return "pipeline"
}

// Estimate is the planner's guess at one node's output size.
type Estimate struct {
	Tuples int64 // estimated output tuple count
	Bytes  int64 // Tuples * output tuple length
}

// Plan is the result of the adaptive pipeline-vs-materialize pass over
// a bound tree: one EdgeMode and one Estimate per node, both indexed by
// node ID. Modes[id] describes the edge from node id up to its
// consumer (the root's mode is meaningless and left EdgePipeline).
// Scan nodes are stored relations — already materialized — and are
// marked EdgeMaterialize for rendering honesty, though engines read
// them in place either way.
type Plan struct {
	Modes []EdgeMode
	Est   []Estimate
	// Budget is the byte budget a materialized intermediate had to fit,
	// recorded for explain output.
	Budget int64
}

// Materialized reports whether the edge above node id materializes.
func (p *Plan) Materialized(id int) bool {
	return p != nil && id < len(p.Modes) && p.Modes[id] == EdgeMaterialize
}

// PlanTree runs the adaptive materialization pass: every edge defaults
// to pipelining, and the inner operand of a join materializes when its
// estimated size fits budget. The inner of a join is the one stream a
// consumer rescans — it is re-probed for every outer page — so holding
// it buffered lets the join see complete, compacted inner pages (and
// the machine engines cache per-page hash tables against stable pages)
// instead of re-receiving a partial stream. An inner too big for the
// budget keeps the pipelined data-flow behavior.
//
// Estimates come from the stats package's textbook selectivities and
// the catalog's actual base-relation cardinalities. cat must be the
// catalog the tree was bound against.
func PlanTree(t *Tree, cat *catalog.Catalog, budget int64) (*Plan, error) {
	p := &Plan{
		Modes:  make([]EdgeMode, t.NumNodes()),
		Est:    make([]Estimate, t.NumNodes()),
		Budget: budget,
	}
	for _, n := range t.Nodes() { // post order: children estimated first
		var tuples int64
		switch n.Kind {
		case OpScan:
			r, err := cat.Get(n.Rel)
			if err != nil {
				return nil, fmt.Errorf("query: plan: %w", err)
			}
			tuples = int64(r.Cardinality())
			p.Modes[n.ID] = EdgeMaterialize // stored relations are at rest
		case OpRestrict:
			in := p.Est[n.Inputs[0].ID].Tuples
			tuples = int64(float64(in) * stats.PredSelectivity(n.Pred))
			if in > 0 && tuples < 1 {
				tuples = 1
			}
		case OpJoin:
			no := p.Est[n.Inputs[0].ID].Tuples
			ni := p.Est[n.Inputs[1].ID].Tuples
			tuples = stats.JoinCardinality(no, ni, n.Join)
		case OpProject:
			// Duplicate elimination removes an unknown fraction; the
			// input count is the safe upper bound.
			tuples = p.Est[n.Inputs[0].ID].Tuples
		case OpAppend, OpDelete:
			if len(n.Inputs) > 0 {
				tuples = p.Est[n.Inputs[0].ID].Tuples
			}
		}
		p.Est[n.ID] = Estimate{Tuples: tuples, Bytes: tuples * int64(n.Schema().TupleLen())}
	}
	for _, n := range t.Nodes() {
		if n.Kind != OpJoin {
			continue
		}
		inner := n.Inputs[1]
		if inner.Kind == OpScan {
			continue // already a stored relation
		}
		if p.Est[inner.ID].Bytes <= budget {
			p.Modes[inner.ID] = EdgeMaterialize
		}
	}
	return p, nil
}

// RenderPlan draws the tree like Render with each operator edge
// annotated by its planned mode and estimated output, in the style of
// an EXPLAIN:
//
//	project [oid, pname]   (node 4, ...)  est 120 tuples, pipeline
func RenderPlan(t *Tree, p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "materialization budget: %d bytes\n", p.Budget)
	renderPlanNode(&b, t.Root(), p, "", "")
	return b.String()
}

func renderPlanNode(b *strings.Builder, n *Node, p *Plan, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(describe(n))
	if n.ID < len(p.Est) {
		fmt.Fprintf(b, "  est %d tuples (%d B), %s", p.Est[n.ID].Tuples, p.Est[n.ID].Bytes, p.Modes[n.ID])
	}
	b.WriteByte('\n')
	for i, in := range n.Inputs {
		connector, next := "├─ ", "│  "
		if i == len(n.Inputs)-1 {
			connector, next = "└─ ", "   "
		}
		renderPlanNode(b, in, p, childPrefix+connector, childPrefix+next)
	}
}

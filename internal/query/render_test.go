package query

import (
	"strings"
	"testing"
)

func TestRenderUnboundTree(t *testing.T) {
	n := MustParse(`project(join(restrict(orders, qty > 10), parts, pid = pid), [oid, pname])`)
	out := Render(n)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	for i, want := range []string{"project [oid, pname]", "join on pid = pid", "restrict qty > 10", "orders", "parts"} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d = %q, want to contain %q", i, lines[i], want)
		}
	}
	// Tree connectors present.
	if !strings.Contains(out, "└─") || !strings.Contains(out, "├─") {
		t.Errorf("missing connectors:\n%s", out)
	}
}

func TestRenderBoundTreeShowsIDs(t *testing.T) {
	cat := testCatalog(t)
	tr, err := Bind(MustParse(`restrict(orders, qty > 2)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTree(tr)
	if !strings.Contains(out, "node 1") || !strings.Contains(out, "node 0") {
		t.Errorf("bound render missing node ids:\n%s", out)
	}
	if !strings.Contains(out, "12-byte tuples") {
		t.Errorf("bound render missing tuple widths:\n%s", out)
	}
}

func TestRenderEffects(t *testing.T) {
	out := Render(MustParse(`append(archive, restrict(orders, qty = 0))`))
	if !strings.Contains(out, "append into archive") {
		t.Errorf("append render:\n%s", out)
	}
	out = Render(MustParse(`delete(orders, qty = 0)`))
	if !strings.Contains(out, "delete from orders where qty = 0") {
		t.Errorf("delete render:\n%s", out)
	}
}

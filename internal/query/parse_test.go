package query

import (
	"testing"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

func TestParseScan(t *testing.T) {
	n, err := Parse("orders")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Kind != OpScan || n.Rel != "orders" {
		t.Errorf("got %+v", n)
	}
}

func TestParseRestrict(t *testing.T) {
	n, err := Parse(`restrict(orders, qty > 10 and pid != 3)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Kind != OpRestrict || n.Inputs[0].Rel != "orders" {
		t.Fatalf("got %+v", n)
	}
	conj, ok := n.Pred.(pred.And)
	if !ok || len(conj.Kids) != 2 {
		t.Fatalf("predicate = %v", n.Pred)
	}
	c0 := conj.Kids[0].(pred.Compare)
	if c0.Attr != "qty" || c0.Op != pred.GT || c0.Const.Int != 10 {
		t.Errorf("first term = %+v", c0)
	}
}

func TestParsePredicateForms(t *testing.T) {
	cases := []string{
		`restrict(r, a = 1)`,
		`restrict(r, a == 1)`,
		`restrict(r, a != 1 or b <> 2)`,
		`restrict(r, a < 1 and a <= 2 and a > 3 and a >= 4)`,
		`restrict(r, not (a = 1))`,
		`restrict(r, not a = 1)`,
		`restrict(r, (a = 1 or b = 2) and c = 3)`,
		`restrict(r, name = "widget")`,
		`restrict(r, price > 1.5)`,
		`restrict(r, price > -2)`,
		`restrict(r, a = b)`,
		`restrict(r, true)`,
		`restrict(r, false)`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseJoin(t *testing.T) {
	n, err := Parse(`join(a, b, x = y and u < v)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Kind != OpJoin || len(n.Join.Terms) != 2 {
		t.Fatalf("got %+v", n)
	}
	if n.Join.Terms[0] != (pred.JoinTerm{Left: "x", Op: pred.EQ, Right: "y"}) {
		t.Errorf("term 0 = %+v", n.Join.Terms[0])
	}
	if n.Join.Terms[1] != (pred.JoinTerm{Left: "u", Op: pred.LT, Right: "v"}) {
		t.Errorf("term 1 = %+v", n.Join.Terms[1])
	}
}

func TestParseProject(t *testing.T) {
	n, err := Parse(`project(orders, [oid, qty])`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Kind != OpProject || len(n.Cols) != 2 || n.Cols[0] != "oid" || n.Cols[1] != "qty" {
		t.Errorf("got %+v", n)
	}
}

func TestParseAppendDelete(t *testing.T) {
	n, err := Parse(`append(archive, restrict(orders, qty = 0))`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Kind != OpAppend || n.Rel != "archive" || n.Inputs[0].Kind != OpRestrict {
		t.Errorf("got %+v", n)
	}
	d, err := Parse(`delete(orders, qty = 0)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Kind != OpDelete || d.Rel != "orders" {
		t.Errorf("got %+v", d)
	}
}

func TestParseNested(t *testing.T) {
	src := `project(join(restrict(orders, qty > 2), join(parts, suppliers, sid = sid), pid = pid), [oid])`
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if ShapeOf(n).Joins != 2 || ShapeOf(n).Scans != 3 {
		t.Errorf("shape = %+v", ShapeOf(n))
	}
}

func TestParseFloatAndString(t *testing.T) {
	n := MustParse(`restrict(r, w >= 2.5e1 and tag = "hi there")`)
	conj := n.Pred.(pred.And)
	if c := conj.Kids[0].(pred.Compare); c.Const.Kind != relation.KindFloat || c.Const.Flt != 25 {
		t.Errorf("float constant = %+v", c.Const)
	}
	if c := conj.Kids[1].(pred.Compare); c.Const.Str != "hi there" {
		t.Errorf("string constant = %+v", c.Const)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`restrict(`,
		`restrict(r)`,
		`restrict(r, )`,
		`restrict(r, a >)`,
		`restrict(r, a ~ 1)`,
		`restrict(r, a = "unterminated)`,
		`join(a, b)`,
		`join(a, b, x = 1)`, // join term must compare attributes
		`project(r, [])`,
		`project(r, [a)`,
		`append(archive)`,
		`delete(r)`,
		`orders extra`,
		`restrict(r, a = 1) trailing`,
		`restrict(r, a = 99999999999999999999)`,
		`(r)`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of bad input did not panic")
		}
	}()
	MustParse(`restrict(`)
}

// Package query implements relational-algebra query trees: the programs
// of the data-flow database machine. A tree is built with the builder
// functions (Scan, Restrict, Join, ...) or parsed from the textual
// language (Parse), then bound against a catalog, which computes the
// schema of every node and checks every predicate. Bound trees can be
// executed by the serial reference executor here, by the concurrent
// data-flow engine (internal/core), or by the machine simulators.
package query

import (
	"fmt"

	"dfdbm/internal/catalog"
	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

// OpKind identifies the operation a query-tree node performs.
type OpKind uint8

// Node kinds. Scan is the leaf kind referencing a database relation; the
// others correspond to the paper's instruction set (restrict, join,
// project, append, delete).
const (
	OpScan OpKind = iota + 1
	OpRestrict
	OpJoin
	OpProject
	OpAppend
	OpDelete
)

// String returns the lower-case operator name.
func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "scan"
	case OpRestrict:
		return "restrict"
	case OpJoin:
		return "join"
	case OpProject:
		return "project"
	case OpAppend:
		return "append"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Node is one instruction of a query tree. Fields are used according to
// Kind; unused fields are zero.
type Node struct {
	// ID is the node's index in post order, assigned by Bind. Before
	// binding it is zero.
	ID   int
	Kind OpKind
	// Rel names the catalog relation for Scan, the destination relation
	// for Append, and the target relation for Delete.
	Rel string
	// Pred is the predicate of Restrict and Delete nodes.
	Pred pred.Pred
	// Join is the join condition of Join nodes; input 0 is the outer
	// relation and input 1 the inner.
	Join pred.JoinCond
	// Cols lists the attributes kept by Project nodes.
	Cols []string
	// Inputs are the child nodes (operands).
	Inputs []*Node

	schema *relation.Schema
}

// Schema returns the output schema of the node. Valid only after Bind.
func (n *Node) Schema() *relation.Schema { return n.schema }

// Label names the node's output: the relation name for scans, otherwise
// a temporary name derived from the node ID. Labels are used to prefix
// colliding attribute names in join results, so every engine must use
// the schemas computed by Bind rather than recomputing them.
func (n *Node) Label() string {
	if n.Kind == OpScan {
		return n.Rel
	}
	return fmt.Sprintf("t%d", n.ID)
}

// Scan returns a leaf node reading the named catalog relation.
func Scan(rel string) *Node { return &Node{Kind: OpScan, Rel: rel} }

// Restrict returns a node filtering its input by p.
func Restrict(in *Node, p pred.Pred) *Node {
	return &Node{Kind: OpRestrict, Pred: p, Inputs: []*Node{in}}
}

// Join returns a node joining outer with inner under cond using the
// nested-loops algorithm.
func Join(outer, inner *Node, cond pred.JoinCond) *Node {
	return &Node{Kind: OpJoin, Join: cond, Inputs: []*Node{outer, inner}}
}

// Project returns a node projecting its input onto cols and eliminating
// duplicates.
func Project(in *Node, cols ...string) *Node {
	return &Node{Kind: OpProject, Cols: cols, Inputs: []*Node{in}}
}

// Append returns a root node appending its input's tuples to the named
// catalog relation.
func Append(dst string, in *Node) *Node {
	return &Node{Kind: OpAppend, Rel: dst, Inputs: []*Node{in}}
}

// Delete returns a root node removing tuples satisfying p from the named
// catalog relation.
func Delete(rel string, p pred.Pred) *Node {
	return &Node{Kind: OpDelete, Rel: rel, Pred: p}
}

// Tree is a bound query tree: a root node whose every descendant has an
// ID, a schema, and validated predicates.
type Tree struct {
	root  *Node
	nodes []*Node // post order; nodes[i].ID == i
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Nodes returns all nodes in post order (children before parents), so
// iterating in order satisfies data dependencies.
func (t *Tree) Nodes() []*Node { return t.nodes }

// Node returns the node with the given ID.
func (t *Tree) Node(id int) *Node { return t.nodes[id] }

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Bind validates a query tree against a catalog: it checks arity,
// resolves every relation name, computes every node's output schema,
// binds every predicate, and assigns post-order IDs. Append and Delete
// may appear only at the root (they are effects, not streams).
func Bind(root *Node, cat *catalog.Catalog) (*Tree, error) {
	if root == nil {
		return nil, fmt.Errorf("query: nil root")
	}
	t := &Tree{root: root}
	if err := t.bind(root, cat, true); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Tree) bind(n *Node, cat *catalog.Catalog, isRoot bool) error {
	for _, in := range n.Inputs {
		if err := t.bind(in, cat, false); err != nil {
			return err
		}
	}
	n.ID = len(t.nodes)
	t.nodes = append(t.nodes, n)

	arity := map[OpKind]int{
		OpScan: 0, OpRestrict: 1, OpJoin: 2, OpProject: 1, OpAppend: 1, OpDelete: 0,
	}
	want, known := arity[n.Kind]
	if !known {
		return fmt.Errorf("query: node %d has unknown kind %v", n.ID, n.Kind)
	}
	if len(n.Inputs) != want {
		return fmt.Errorf("query: %s node %d has %d inputs, needs %d", n.Kind, n.ID, len(n.Inputs), want)
	}
	if (n.Kind == OpAppend || n.Kind == OpDelete) && !isRoot {
		return fmt.Errorf("query: %s node %d must be the root of the tree", n.Kind, n.ID)
	}

	switch n.Kind {
	case OpScan:
		r, err := cat.Get(n.Rel)
		if err != nil {
			return err
		}
		n.schema = r.Schema()

	case OpRestrict:
		in := n.Inputs[0]
		if n.Pred == nil {
			return fmt.Errorf("query: restrict node %d has no predicate", n.ID)
		}
		if _, err := n.Pred.Bind(in.schema); err != nil {
			return fmt.Errorf("query: restrict node %d: %w", n.ID, err)
		}
		n.schema = in.schema

	case OpJoin:
		outer, inner := n.Inputs[0], n.Inputs[1]
		if _, err := n.Join.Bind(outer.schema, inner.schema); err != nil {
			return fmt.Errorf("query: join node %d: %w", n.ID, err)
		}
		s, err := outer.schema.Concat(inner.schema, inner.Label())
		if err != nil {
			return fmt.Errorf("query: join node %d: %w", n.ID, err)
		}
		n.schema = s

	case OpProject:
		in := n.Inputs[0]
		if len(n.Cols) == 0 {
			return fmt.Errorf("query: project node %d keeps no attributes", n.ID)
		}
		s, err := in.schema.Project(n.Cols...)
		if err != nil {
			return fmt.Errorf("query: project node %d: %w", n.ID, err)
		}
		n.schema = s

	case OpAppend:
		dst, err := cat.Get(n.Rel)
		if err != nil {
			return err
		}
		in := n.Inputs[0]
		if dst.Schema().TupleLen() != in.schema.TupleLen() {
			return fmt.Errorf("query: append node %d: input layout %s does not match %q %s",
				n.ID, in.schema, n.Rel, dst.Schema())
		}
		n.schema = dst.Schema()

	case OpDelete:
		r, err := cat.Get(n.Rel)
		if err != nil {
			return err
		}
		if n.Pred == nil {
			return fmt.Errorf("query: delete node %d has no predicate", n.ID)
		}
		if _, err := n.Pred.Bind(r.Schema()); err != nil {
			return fmt.Errorf("query: delete node %d: %w", n.ID, err)
		}
		n.schema = r.Schema()
	}
	return nil
}

// String renders the tree in the surface syntax accepted by Parse.
func (t *Tree) String() string { return nodeString(t.root) }

func nodeString(n *Node) string {
	switch n.Kind {
	case OpScan:
		return n.Rel
	case OpRestrict:
		return fmt.Sprintf("restrict(%s, %s)", nodeString(n.Inputs[0]), n.Pred)
	case OpJoin:
		return fmt.Sprintf("join(%s, %s, %s)", nodeString(n.Inputs[0]), nodeString(n.Inputs[1]), n.Join)
	case OpProject:
		cols := ""
		for i, c := range n.Cols {
			if i > 0 {
				cols += ", "
			}
			cols += c
		}
		return fmt.Sprintf("project(%s, [%s])", nodeString(n.Inputs[0]), cols)
	case OpAppend:
		return fmt.Sprintf("append(%s, %s)", n.Rel, nodeString(n.Inputs[0]))
	case OpDelete:
		return fmt.Sprintf("delete(%s, %s)", n.Rel, n.Pred)
	default:
		return "?"
	}
}

package query

import (
	"testing"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

func TestSerialRestrict(t *testing.T) {
	cat := testCatalog(t)
	tr, err := Bind(MustParse(`restrict(orders, qty > 2)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecuteSerial(cat, tr, 0)
	if err != nil {
		t.Fatalf("ExecuteSerial: %v", err)
	}
	// qty = i%5 over 30 rows: qty>2 holds for qty in {3,4}, 6 rows each.
	if out.Cardinality() != 12 {
		t.Errorf("restrict gave %d tuples, want 12", out.Cardinality())
	}
}

func TestSerialJoinProject(t *testing.T) {
	cat := testCatalog(t)
	tr, err := Bind(MustParse(
		`project(join(orders, parts, pid = pid), [oid, pname])`), cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecuteSerial(cat, tr, 0)
	if err != nil {
		t.Fatalf("ExecuteSerial: %v", err)
	}
	// Every order matches exactly one part; oids are distinct, so the
	// projection keeps all 30.
	if out.Cardinality() != 30 {
		t.Errorf("join+project gave %d tuples, want 30", out.Cardinality())
	}
	if out.Schema().NumAttrs() != 2 {
		t.Errorf("result schema = %s", out.Schema())
	}
}

func TestSerialProjectEliminatesDuplicates(t *testing.T) {
	cat := testCatalog(t)
	tr, err := Bind(MustParse(`project(orders, [qty])`), cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecuteSerial(cat, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// qty takes values 0..4.
	if out.Cardinality() != 5 {
		t.Errorf("project gave %d tuples, want 5", out.Cardinality())
	}
}

func TestSerialAppend(t *testing.T) {
	cat := testCatalog(t)
	tr, err := Bind(MustParse(`append(archive, restrict(orders, qty = 0))`), cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecuteSerial(cat, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name() != "archive" {
		t.Errorf("append returned %q", out.Name())
	}
	archive, _ := cat.Get("archive")
	if archive.Cardinality() != 6 {
		t.Errorf("archive has %d tuples, want 6", archive.Cardinality())
	}
}

func TestSerialDelete(t *testing.T) {
	cat := testCatalog(t)
	tr, err := Bind(MustParse(`delete(orders, qty = 0)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteSerial(cat, tr, 0); err != nil {
		t.Fatal(err)
	}
	orders, _ := cat.Get("orders")
	if orders.Cardinality() != 24 {
		t.Errorf("orders has %d tuples after delete, want 24", orders.Cardinality())
	}
	n, err := Count(orders)
	if err != nil || n != 24 {
		t.Errorf("recount = %d, %v", n, err)
	}
}

// Count re-counts via a fresh scan to ensure the deletion compacted
// consistently.
func Count(r *relation.Relation) (int, error) {
	n := 0
	err := r.Each(func(relation.Tuple) bool { n++; return true })
	return n, err
}

func TestSerialJoinConditionHolds(t *testing.T) {
	cat := testCatalog(t)
	tr, err := Bind(MustParse(`join(orders, parts, pid = pid and qty < weight)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecuteSerial(cat, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	pidIdx, _ := out.Schema().Index("pid")
	partsPidIdx, _ := out.Schema().Index("parts.pid")
	qtyIdx, _ := out.Schema().Index("qty")
	weightIdx, _ := out.Schema().Index("weight")
	_ = out.Each(func(tup relation.Tuple) bool {
		if tup[pidIdx].Int != tup[partsPidIdx].Int || tup[qtyIdx].Int >= tup[weightIdx].Int {
			t.Errorf("tuple %v violates join condition", tup)
		}
		return true
	})
}

func TestSerialExplicitPageSize(t *testing.T) {
	cat := testCatalog(t)
	tr, err := Bind(MustParse(`restrict(orders, true)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecuteSerial(cat, tr, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if out.PageSize() != 4096 {
		t.Errorf("intermediate page size = %d, want 4096", out.PageSize())
	}
	if out.Cardinality() != 30 {
		t.Errorf("cardinality = %d, want 30", out.Cardinality())
	}
}

func TestSerialDeepTree(t *testing.T) {
	cat := testCatalog(t)
	tr, err := Bind(Join(
		Restrict(Scan("orders"), pred.Compare{Attr: "qty", Op: pred.GE, Const: relation.IntVal(1)}),
		Restrict(Scan("parts"), pred.Compare{Attr: "weight", Op: pred.LT, Const: relation.IntVal(60)}),
		pred.Equi("pid", "pid"),
	), cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecuteSerial(cat, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Orders with qty>=1: 24. Parts with weight<60: pids 0..5.
	// Orders with pid in 0..5 and qty>=1: pid = i%12, qty = i%5.
	want := 0
	for i := 0; i < 30; i++ {
		if i%12 <= 5 && i%5 >= 1 {
			want++
		}
	}
	if out.Cardinality() != want {
		t.Errorf("deep tree gave %d tuples, want %d", out.Cardinality(), want)
	}
}

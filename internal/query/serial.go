package query

import (
	"fmt"

	"dfdbm/internal/catalog"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
)

// ExecuteSerial runs a bound tree on a single processor, one operator at
// a time, materializing every intermediate relation. It is the reference
// implementation that every concurrent engine's output is checked
// against, and the "single processor" baseline of the paper's Section
// 2.1 discussion.
//
// pageSize sets the page size of intermediate relations; if zero, each
// intermediate inherits the largest page size among its inputs.
func ExecuteSerial(cat *catalog.Catalog, t *Tree, pageSize int) (*relation.Relation, error) {
	results, err := ExecuteSerialAll(cat, t, pageSize)
	if err != nil {
		return nil, err
	}
	return results[t.Root().ID], nil
}

// ExecuteSerialAll runs a bound tree serially and returns the result of
// every node, indexed by node ID. Scan nodes map to their catalog
// relations. The simulators use this to profile per-node cardinalities.
func ExecuteSerialAll(cat *catalog.Catalog, t *Tree, pageSize int) ([]*relation.Relation, error) {
	results := make([]*relation.Relation, t.NumNodes())
	for _, n := range t.Nodes() {
		r, err := executeNode(cat, n, results, pageSize)
		if err != nil {
			return nil, fmt.Errorf("query: node %d (%s): %w", n.ID, n.Kind, err)
		}
		results[n.ID] = r
	}
	return results, nil
}

func executeNode(cat *catalog.Catalog, n *Node, results []*relation.Relation, pageSize int) (*relation.Relation, error) {
	out := func(minTupleLen int, inputs ...*relation.Relation) (int, error) {
		size := pageSize
		if size == 0 {
			for _, in := range inputs {
				if in.PageSize() > size {
					size = in.PageSize()
				}
			}
		}
		if min := relation.PageHeaderLen + minTupleLen; size < min {
			size = min
		}
		if size == 0 {
			return 0, fmt.Errorf("no page size available")
		}
		return size, nil
	}

	switch n.Kind {
	case OpScan:
		return cat.Get(n.Rel)

	case OpRestrict:
		in := results[n.Inputs[0].ID]
		b, err := n.Pred.Bind(in.Schema())
		if err != nil {
			return nil, err
		}
		size, err := out(n.Schema().TupleLen(), in)
		if err != nil {
			return nil, err
		}
		res, err := relation.New(n.Label(), n.Schema(), size)
		if err != nil {
			return nil, err
		}
		for _, pg := range in.Pages() {
			if _, err := relalg.RestrictPage(pg, b, res.InsertRaw); err != nil {
				return nil, err
			}
		}
		return res, nil

	case OpJoin:
		outer := results[n.Inputs[0].ID]
		inner := results[n.Inputs[1].ID]
		bound, err := n.Join.Bind(outer.Schema(), inner.Schema())
		if err != nil {
			return nil, err
		}
		size, err := out(n.Schema().TupleLen(), outer, inner)
		if err != nil {
			return nil, err
		}
		res, err := relation.New(n.Label(), n.Schema(), size)
		if err != nil {
			return nil, err
		}
		for _, op := range outer.Pages() {
			for _, ip := range inner.Pages() {
				if _, err := relalg.JoinPages(op, ip, bound, res.InsertRaw); err != nil {
					return nil, err
				}
			}
		}
		return res, nil

	case OpProject:
		in := results[n.Inputs[0].ID]
		proj, err := relalg.NewProjector(in.Schema(), n.Cols...)
		if err != nil {
			return nil, err
		}
		size, err := out(n.Schema().TupleLen(), in)
		if err != nil {
			return nil, err
		}
		res, err := relation.New(n.Label(), n.Schema(), size)
		if err != nil {
			return nil, err
		}
		d := relalg.NewDedup()
		for _, pg := range in.Pages() {
			if _, err := relalg.ProjectPage(pg, proj, d, res.InsertRaw); err != nil {
				return nil, err
			}
		}
		return res, nil

	case OpAppend:
		in := results[n.Inputs[0].ID]
		dst, err := cat.Get(n.Rel)
		if err != nil {
			return nil, err
		}
		if _, err := relalg.Append(dst, in); err != nil {
			return nil, err
		}
		return dst, nil

	case OpDelete:
		r, err := cat.Get(n.Rel)
		if err != nil {
			return nil, err
		}
		if _, err := relalg.Delete(r, n.Pred); err != nil {
			return nil, err
		}
		return r, nil
	}
	return nil, fmt.Errorf("unknown node kind %v", n.Kind)
}

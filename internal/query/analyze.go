package query

import "sort"

// Footprint summarizes which database relations a query reads and
// writes. The master controller uses footprints for concurrency
// control: two queries may run simultaneously unless one writes a
// relation the other reads or writes.
type Footprint struct {
	Reads  []string // sorted, distinct
	Writes []string // sorted, distinct
}

// Analyze computes the footprint of a bound (or unbound) tree root.
func Analyze(root *Node) Footprint {
	reads := map[string]bool{}
	writes := map[string]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Kind {
		case OpScan:
			reads[n.Rel] = true
		case OpAppend:
			writes[n.Rel] = true
		case OpDelete:
			reads[n.Rel] = true
			writes[n.Rel] = true
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)
	return Footprint{Reads: sortedKeys(reads), Writes: sortedKeys(writes)}
}

// Conflicts reports whether two footprints cannot run concurrently:
// either writes anything the other reads or writes.
func (f Footprint) Conflicts(g Footprint) bool {
	return intersects(f.Writes, g.Reads) ||
		intersects(f.Writes, g.Writes) ||
		intersects(g.Writes, f.Reads)
}

func intersects(a, b []string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Shape counts the operators in a tree: the metric the paper uses to
// describe its benchmark mix ("3 queries with 1 join and 2 restricts
// each", ...).
type Shape struct {
	Scans, Restricts, Joins, Projects, Appends, Deletes int
}

// ShapeOf computes the operator counts of a tree root.
func ShapeOf(root *Node) Shape {
	var s Shape
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Kind {
		case OpScan:
			s.Scans++
		case OpRestrict:
			s.Restricts++
		case OpJoin:
			s.Joins++
		case OpProject:
			s.Projects++
		case OpAppend:
			s.Appends++
		case OpDelete:
			s.Deletes++
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)
	return s
}

// Depth returns the height of the tree (a single node has depth 1).
func Depth(root *Node) int {
	max := 0
	for _, in := range root.Inputs {
		if d := Depth(in); d > max {
			max = d
		}
	}
	return max + 1
}

// Package heap implements the disk-resident half of the paper's
// three-level storage hierarchy: slotted-page heap files (mass
// storage) reached through a pinning buffer pool with CLOCK eviction
// (the multiport disk cache), serving pages to the engines' IC-memory
// level. One relation is one file; slots hold relation.Page wire
// blobs (Page.Marshal) at page-aligned offsets, so a stored relation
// is byte-identical to its resident form by construction.
//
// Crash safety is split with the WAL: slot writes are in-place and
// carry no ordering guarantees, but every slot content newer than the
// file's base LSN is reproducible from full-page post-images in the
// log (wal.RecAppendPages) or from an atomic whole-file rewrite
// (deletes). The header is written ping-pong into two checksummed
// blocks so a torn header write surrenders to the previous one.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"dfdbm/internal/catalog"
	"dfdbm/internal/relation"
)

// ErrCorrupt marks a heap file that fails validation: bad magic, no
// valid header block, or a slot whose checksum does not match.
// Callers test with errors.Is.
var ErrCorrupt = errors.New("heap: corrupt heap file")

// On-disk layout:
//
//	offset 0        header block A (headerBlockLen bytes)
//	offset 512      header block B
//	offset dataOff  slot 0, slot 1, ... (slotSize each, page-aligned)
//
// Each header block: magic, version, page size, tuple length, a
// monotonically increasing sequence number (the newest valid block
// wins), schema hash, page count, base LSN, CRC-32C. Each slot: u32
// blob length, u32 blob CRC-32C, 8 reserved bytes, the page blob,
// zero padding to slotSize.
const (
	headerBlockLen = 512
	headerDataLen  = 52 // bytes covered by the header CRC
	dataOff        = 4096
	slotHeaderLen  = 16
	slotAlign      = 4096
	fileVersion    = 1
)

var heapMagic = [8]byte{'D', 'F', 'D', 'B', 'H', 'E', 'A', 'P'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// slotSizeFor returns the aligned on-disk size of one slot for the
// given page size: header plus blob capacity, rounded up to the
// alignment unit.
func slotSizeFor(pageSize int) int64 {
	raw := int64(pageSize + slotHeaderLen)
	return (raw + slotAlign - 1) / slotAlign * slotAlign
}

// File is one relation's heap file. The logical state (page count,
// per-page tuple counts) leads the physical state: Install-path
// mutations update it immediately, while slot bytes reach the disk at
// buffer-pool write-back or checkpoint time. On open, the logical
// state is taken from the newest valid header — the checkpoint
// horizon — and WAL replay rebuilds everything past it.
type File struct {
	path     string
	f        *os.File
	pageSize int
	tupleLen int
	slotSize int64

	mu         sync.Mutex
	pages      int
	counts     []uint32 // tuples per page
	seq        uint64   // header generation (ping-pong selector)
	baseLSN    uint64
	schemaHash uint64
}

// Create makes an empty heap file at path with a durable initial
// header.
func Create(path string, pageSize, tupleLen int, schemaHash, baseLSN uint64) (*File, error) {
	if _, err := relation.NewPage(pageSize, tupleLen); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	hf := &File{
		path: path, f: f,
		pageSize: pageSize, tupleLen: tupleLen,
		slotSize:   slotSizeFor(pageSize),
		schemaHash: schemaHash,
		baseLSN:    baseLSN,
	}
	if err := hf.writeHeaderLocked(baseLSN); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return hf, nil
}

// CreateFrom writes the pages of rel into a brand-new heap file at
// path with all-or-nothing crash semantics: temp file, full content,
// header with baseLSN, fsync, rename, directory fsync. It is the
// adopt path (first materialization of a resident relation) and the
// delete path (atomic compacting rewrite).
func CreateFrom(path string, rel *relation.Relation, schemaHash, baseLSN uint64) (*File, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	tmpName := tmp.Name()
	fail := func(err error) (*File, error) {
		tmp.Close()
		os.Remove(tmpName)
		return nil, err
	}

	pageSize, tupleLen := rel.PageSize(), rel.Schema().TupleLen()
	slotSize := slotSizeFor(pageSize)
	hf := &File{
		path: path, f: tmp,
		pageSize: pageSize, tupleLen: tupleLen,
		slotSize:   slotSize,
		schemaHash: schemaHash,
		baseLSN:    baseLSN,
	}
	i := 0
	err = rel.EachPage(func(p *relation.Page) error {
		if werr := hf.writeSlotLocked(i, p); werr != nil {
			return werr
		}
		hf.pages = i + 1
		hf.counts = append(hf.counts, uint32(p.TupleCount()))
		i++
		return nil
	})
	if err != nil {
		return fail(err)
	}
	if err := hf.writeHeaderLocked(baseLSN); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fail(err)
	}
	if err := catalog.SyncDir(dir); err != nil {
		tmp.Close()
		return nil, err
	}
	return hf, nil
}

// Open reads an existing heap file, selecting the newest valid header
// block and loading per-page tuple counts from the slot headers. A
// non-zero wantSchemaHash is verified against the header.
func Open(path string, wantSchemaHash uint64) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	hf, err := openFrom(path, f, wantSchemaHash)
	if err != nil {
		f.Close()
		return nil, err
	}
	return hf, nil
}

func openFrom(path string, f *os.File, wantSchemaHash uint64) (*File, error) {
	var blocks [2][headerBlockLen]byte
	for i := range blocks {
		if _, err := f.ReadAt(blocks[i][:], int64(i)*headerBlockLen); err != nil {
			return nil, fmt.Errorf("%w: %s: reading header block %d: %v", ErrCorrupt, filepath.Base(path), i, err)
		}
	}
	var best *headerView
	for i := range blocks {
		hv, err := parseHeader(blocks[i][:])
		if err != nil {
			continue // a torn block surrenders to the other one
		}
		if best == nil || hv.seq > best.seq {
			best = hv
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: %s: no valid header block", ErrCorrupt, filepath.Base(path))
	}
	if wantSchemaHash != 0 && best.schemaHash != wantSchemaHash {
		return nil, fmt.Errorf("%w: %s: schema hash %016x does not match expected %016x",
			ErrCorrupt, filepath.Base(path), best.schemaHash, wantSchemaHash)
	}
	hf := &File{
		path: path, f: f,
		pageSize: best.pageSize, tupleLen: best.tupleLen,
		slotSize:   slotSizeFor(best.pageSize),
		pages:      int(best.pages),
		seq:        best.seq,
		baseLSN:    best.baseLSN,
		schemaHash: best.schemaHash,
	}
	hf.counts = make([]uint32, hf.pages)
	var sh [slotHeaderLen]byte
	for i := 0; i < hf.pages; i++ {
		if _, err := f.ReadAt(sh[:8], dataOff+int64(i)*hf.slotSize); err != nil {
			return nil, fmt.Errorf("%w: %s: slot %d header: %v", ErrCorrupt, filepath.Base(path), i, err)
		}
		blobLen := binary.LittleEndian.Uint32(sh[0:4])
		if blobLen < relation.PageHeaderLen || int64(blobLen) > hf.slotSize-slotHeaderLen {
			return nil, fmt.Errorf("%w: %s: slot %d: implausible blob length %d", ErrCorrupt, filepath.Base(path), i, blobLen)
		}
		hf.counts[i] = (blobLen - relation.PageHeaderLen) / uint32(hf.tupleLen)
	}
	return hf, nil
}

type headerView struct {
	pageSize, tupleLen int
	seq                uint64
	schemaHash         uint64
	pages              uint64
	baseLSN            uint64
}

func parseHeader(b []byte) (*headerView, error) {
	if [8]byte(b[:8]) != heapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if got, want := crc32.Checksum(b[:headerDataLen], castagnoli), binary.LittleEndian.Uint32(b[headerDataLen:headerDataLen+4]); got != want {
		return nil, fmt.Errorf("%w: header CRC mismatch (computed %08x, stored %08x)", ErrCorrupt, got, want)
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	hv := &headerView{
		pageSize:   int(binary.LittleEndian.Uint32(b[12:16])),
		tupleLen:   int(binary.LittleEndian.Uint32(b[16:20])),
		seq:        binary.LittleEndian.Uint64(b[20:28]),
		schemaHash: binary.LittleEndian.Uint64(b[28:36]),
		pages:      binary.LittleEndian.Uint64(b[36:44]),
		baseLSN:    binary.LittleEndian.Uint64(b[44:52]),
	}
	if _, err := relation.NewPage(hv.pageSize, hv.tupleLen); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return hv, nil
}

// writeHeaderLocked renders the current logical state into the next
// ping-pong block. Callers own the durability ordering (fsync data
// before, fsync header after).
func (hf *File) writeHeaderLocked(baseLSN uint64) error {
	hf.seq++
	hf.baseLSN = baseLSN
	var b [headerBlockLen]byte
	copy(b[:8], heapMagic[:])
	binary.LittleEndian.PutUint32(b[8:12], fileVersion)
	binary.LittleEndian.PutUint32(b[12:16], uint32(hf.pageSize))
	binary.LittleEndian.PutUint32(b[16:20], uint32(hf.tupleLen))
	binary.LittleEndian.PutUint64(b[20:28], hf.seq)
	binary.LittleEndian.PutUint64(b[28:36], hf.schemaHash)
	binary.LittleEndian.PutUint64(b[36:44], uint64(hf.pages))
	binary.LittleEndian.PutUint64(b[44:52], baseLSN)
	binary.LittleEndian.PutUint32(b[headerDataLen:headerDataLen+4], crc32.Checksum(b[:headerDataLen], castagnoli))
	off := int64(hf.seq%2) * headerBlockLen
	_, err := hf.f.WriteAt(b[:], off)
	return err
}

// writeSlotLocked writes page i's full slot (header, blob, padding) at
// its fixed offset. In-place and unordered: the WAL makes it safe.
func (hf *File) writeSlotLocked(i int, p *relation.Page) error {
	blob := p.Marshal()
	if int64(len(blob))+slotHeaderLen > hf.slotSize {
		return fmt.Errorf("heap: %s: page %d blob of %d bytes exceeds slot size %d", filepath.Base(hf.path), i, len(blob), hf.slotSize)
	}
	buf := make([]byte, hf.slotSize)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(blob)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(blob, castagnoli))
	copy(buf[slotHeaderLen:], blob)
	_, err := hf.f.WriteAt(buf, dataOff+int64(i)*hf.slotSize)
	return err
}

// WritePage writes page i's slot in place — the buffer pool's
// write-back hook. It never changes the logical page count (NotePage
// did, at install time).
func (hf *File) WritePage(i int, p *relation.Page) error {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	if i < 0 || i >= hf.pages {
		return fmt.Errorf("heap: %s: write-back of page %d beyond %d pages", filepath.Base(hf.path), i, hf.pages)
	}
	return hf.writeSlotLocked(i, p)
}

// ReadPage reads and validates slot i, returning the decoded page.
func (hf *File) ReadPage(i int) (*relation.Page, error) {
	hf.mu.Lock()
	slotSize := hf.slotSize
	pages := hf.pages
	hf.mu.Unlock()
	if i < 0 || i >= pages {
		return nil, fmt.Errorf("heap: %s: read of page %d beyond %d pages", filepath.Base(hf.path), i, pages)
	}
	buf := make([]byte, slotSize)
	if _, err := hf.f.ReadAt(buf, dataOff+int64(i)*slotSize); err != nil {
		return nil, fmt.Errorf("heap: %s: slot %d: %w", filepath.Base(hf.path), i, err)
	}
	blobLen := binary.LittleEndian.Uint32(buf[0:4])
	wantCRC := binary.LittleEndian.Uint32(buf[4:8])
	if int64(blobLen)+slotHeaderLen > slotSize {
		return nil, fmt.Errorf("%w: %s: slot %d: implausible blob length %d", ErrCorrupt, filepath.Base(hf.path), i, blobLen)
	}
	blob := buf[slotHeaderLen : slotHeaderLen+int64(blobLen)]
	if got := crc32.Checksum(blob, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("%w: %s: slot %d CRC mismatch (computed %08x, stored %08x)", ErrCorrupt, filepath.Base(hf.path), i, got, wantCRC)
	}
	p, err := relation.UnmarshalPage(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: slot %d: %v", ErrCorrupt, filepath.Base(hf.path), i, err)
	}
	if p.TupleLen() != hf.tupleLen {
		return nil, fmt.Errorf("%w: %s: slot %d holds %d-byte tuples, file holds %d", ErrCorrupt, filepath.Base(hf.path), i, p.TupleLen(), hf.tupleLen)
	}
	return p, nil
}

// NotePage records the logical effect of installing page i with count
// tuples: extend or update the page count and per-page tuple counts.
// The slot bytes follow later, at write-back or checkpoint.
func (hf *File) NotePage(i, count int) error {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	switch {
	case i < hf.pages:
		hf.counts[i] = uint32(count)
	case i == hf.pages:
		hf.pages++
		hf.counts = append(hf.counts, uint32(count))
	default:
		return fmt.Errorf("heap: %s: install of page %d beyond %d pages", filepath.Base(hf.path), i, hf.pages)
	}
	return nil
}

// NumPages returns the logical page count.
func (hf *File) NumPages() int {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	return hf.pages
}

// PageTuples returns the tuple count of page i.
func (hf *File) PageTuples(i int) int {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	return int(hf.counts[i])
}

// Cardinality returns the total tuple count.
func (hf *File) Cardinality() int {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	n := 0
	for _, c := range hf.counts {
		n += int(c)
	}
	return n
}

// BaseLSN returns the recovery horizon from the last durable header.
func (hf *File) BaseLSN() uint64 {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	return hf.baseLSN
}

// PageSize returns the file's page size.
func (hf *File) PageSize() int { return hf.pageSize }

// Path returns the file's path.
func (hf *File) Path() string { return hf.path }

// Checkpoint makes the current logical state durable: the caller must
// have written back every dirty page first (Pool.FlushFile). It
// fsyncs the data, advances the header (page count, baseLSN), fsyncs
// again, and trims any stale slots past the logical end.
func (hf *File) Checkpoint(baseLSN uint64) error {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	if err := hf.f.Sync(); err != nil {
		return err
	}
	if err := hf.writeHeaderLocked(baseLSN); err != nil {
		return err
	}
	if err := hf.f.Sync(); err != nil {
		return err
	}
	want := dataOff + int64(hf.pages)*hf.slotSize
	if info, err := hf.f.Stat(); err == nil && info.Size() > want {
		return hf.f.Truncate(want)
	}
	return nil
}

// Size returns the file's current physical size in bytes.
func (hf *File) Size() (int64, error) {
	info, err := hf.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Sync fsyncs the file.
func (hf *File) Sync() error { return hf.f.Sync() }

// Close closes the underlying file.
func (hf *File) Close() error { return hf.f.Close() }

package heap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dfdbm/internal/catalog"
	"dfdbm/internal/obs"
	"dfdbm/internal/relation"
)

// SchemaHash fingerprints a schema layout: FNV-1a over its rendered
// attribute list. Two schemas hash equal iff their names, types, and
// widths match. (wal.SchemaHash delegates here so log records and
// heap headers agree byte-for-byte.)
func SchemaHash(s *relation.Schema) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s.String())
	return h.Sum64()
}

// Store manages one heap file per relation under a directory, all
// sharing one buffer pool. The manifest file is the commit point for
// the set of relations: a relation exists durably iff the manifest
// names it and its heap file opens clean.
type Store struct {
	dir  string
	pool *Pool

	mu    sync.Mutex // lock order: Store.mu -> Pool.mu
	files map[string]*File
}

const (
	manifestName  = "manifest"
	heapSuffix    = ".heap"
	manifestMagic = "DFDBHMAN"
)

// OpenStore opens (creating if needed) a heap store rooted at dir with
// the given buffer-pool frame budget. Leftover temp files from
// interrupted atomic writes are removed.
func OpenStore(dir string, frames int, o *obs.Observer) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &Store{
		dir:   dir,
		pool:  NewPool(frames, o),
		files: make(map[string]*File),
	}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Pool returns the shared buffer pool.
func (s *Store) Pool() *Pool { return s.pool }

func (s *Store) filePath(name string) string {
	return filepath.Join(s.dir, name+heapSuffix)
}

// ManifestExists reports whether the store has a durable manifest —
// i.e. whether heap mode has been committed in this directory.
func (s *Store) ManifestExists() bool {
	_, err := os.Stat(filepath.Join(s.dir, manifestName))
	return err == nil
}

// manifestEntry is one relation's schema record in the manifest.
type manifestEntry struct {
	name     string
	pageSize int
	schema   *relation.Schema
}

// writeManifest atomically persists the current relation set (names
// and schemas). It is the commit point for adopt/migration: once the
// manifest is durable, recovery trusts heap files over snapshots.
func (s *Store) writeManifest(cat *catalog.Catalog) error {
	names := cat.Names()
	sort.Strings(names)
	return catalog.WriteFileAtomic(filepath.Join(s.dir, manifestName), func(w io.Writer) error {
		crcw := crc32.New(castagnoli)
		bw := bufio.NewWriter(io.MultiWriter(w, crcw))
		if _, err := bw.WriteString(manifestMagic); err != nil {
			return err
		}
		var u32 [4]byte
		var u16 [2]byte
		putU32 := func(v uint32) error {
			binary.LittleEndian.PutUint32(u32[:], v)
			_, err := bw.Write(u32[:])
			return err
		}
		putStr := func(str string) error {
			binary.LittleEndian.PutUint16(u16[:], uint16(len(str)))
			if _, err := bw.Write(u16[:]); err != nil {
				return err
			}
			_, err := bw.WriteString(str)
			return err
		}
		if err := putU32(uint32(len(names))); err != nil {
			return err
		}
		for _, name := range names {
			rel, err := cat.Get(name)
			if err != nil {
				return err
			}
			if err := putStr(name); err != nil {
				return err
			}
			if err := putU32(uint32(rel.PageSize())); err != nil {
				return err
			}
			sc := rel.Schema()
			binary.LittleEndian.PutUint16(u16[:], uint16(sc.NumAttrs()))
			if _, err := bw.Write(u16[:]); err != nil {
				return err
			}
			for i := 0; i < sc.NumAttrs(); i++ {
				a := sc.Attr(i)
				if err := bw.WriteByte(byte(a.Type)); err != nil {
					return err
				}
				if err := putU32(uint32(a.Width)); err != nil {
					return err
				}
				if err := putStr(a.Name); err != nil {
					return err
				}
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], crcw.Sum32())
		_, err := w.Write(trailer[:])
		return err
	})
}

// readManifest parses the manifest file in dir.
func readManifest(dir string) ([]manifestEntry, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	if len(raw) < len(manifestMagic)+8 || string(raw[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: manifest: bad magic or truncated", ErrCorrupt)
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: manifest CRC mismatch (computed %08x, stored %08x)", ErrCorrupt, got, want)
	}
	d := body[len(manifestMagic):]
	fail := func() ([]manifestEntry, error) {
		return nil, fmt.Errorf("%w: manifest: truncated record", ErrCorrupt)
	}
	u32 := func() (uint32, bool) {
		if len(d) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(d)
		d = d[4:]
		return v, true
	}
	str := func() (string, bool) {
		if len(d) < 2 {
			return "", false
		}
		n := int(binary.LittleEndian.Uint16(d))
		d = d[2:]
		if len(d) < n {
			return "", false
		}
		v := string(d[:n])
		d = d[n:]
		return v, true
	}
	count, ok := u32()
	if !ok {
		return fail()
	}
	out := make([]manifestEntry, 0, count)
	for r := 0; r < int(count); r++ {
		name, ok := str()
		if !ok {
			return fail()
		}
		pageSize, ok := u32()
		if !ok {
			return fail()
		}
		if len(d) < 2 {
			return fail()
		}
		nAttrs := int(binary.LittleEndian.Uint16(d))
		d = d[2:]
		attrs := make([]relation.Attr, 0, nAttrs)
		for a := 0; a < nAttrs; a++ {
			if len(d) < 1 {
				return fail()
			}
			typ := relation.Type(d[0])
			d = d[1:]
			width, ok := u32()
			if !ok {
				return fail()
			}
			aname, ok := str()
			if !ok {
				return fail()
			}
			attrs = append(attrs, relation.Attr{Name: aname, Type: typ, Width: int(width)})
		}
		sc, err := relation.NewSchema(attrs...)
		if err != nil {
			return nil, fmt.Errorf("%w: manifest: relation %q: %v", ErrCorrupt, name, err)
		}
		out = append(out, manifestEntry{name: name, pageSize: int(pageSize), schema: sc})
	}
	return out, nil
}

// LoadCatalog opens every heap file named by the manifest, validates
// it against the recorded schema, and returns a catalog of stored
// relations attached to this store's buffer pool.
func (s *Store) LoadCatalog() (*catalog.Catalog, error) {
	ents, err := readManifest(s.dir)
	if err != nil {
		return nil, err
	}
	cat := catalog.New()
	for _, e := range ents {
		hf, err := Open(s.filePath(e.name), SchemaHash(e.schema))
		if err != nil {
			return nil, fmt.Errorf("heap: relation %q: %w", e.name, err)
		}
		if hf.pageSize != e.pageSize || hf.tupleLen != e.schema.TupleLen() {
			hf.Close()
			return nil, fmt.Errorf("%w: relation %q: file geometry %d/%d does not match manifest %d/%d",
				ErrCorrupt, e.name, hf.pageSize, hf.tupleLen, e.pageSize, e.schema.TupleLen())
		}
		rel, err := relation.New(e.name, e.schema, e.pageSize)
		if err != nil {
			hf.Close()
			return nil, err
		}
		s.mu.Lock()
		s.files[e.name] = hf
		s.mu.Unlock()
		rel.SetStore(&backing{store: s, name: e.name})
		cat.Put(rel)
	}
	return cat, nil
}

// Adopt materializes rel (resident or already stored elsewhere) into
// a brand-new heap file with base LSN baseLSN, attaches it to the
// store, and flips rel to stored mode. The manifest is NOT updated —
// callers batch adoptions and commit once via Checkpoint or
// writeManifest.
func (s *Store) Adopt(rel *relation.Relation, baseLSN uint64) error {
	if rel.Stored() {
		return nil
	}
	hf, err := CreateFrom(s.filePath(rel.Name()), rel, SchemaHash(rel.Schema()), baseLSN)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if old, ok := s.files[rel.Name()]; ok {
		s.pool.DropFile(old)
		old.Close()
	}
	s.files[rel.Name()] = hf
	s.mu.Unlock()
	rel.SetStore(&backing{store: s, name: rel.Name()})
	return nil
}

// file resolves a relation's open heap file.
func (s *Store) file(name string) *File {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.files[name]
}

// Checkpoint makes every relation in cat durable at cover: relations
// not yet stored are adopted (with base LSN cover), dirty frames are
// flushed, each file's header advances to cover, and the manifest is
// rewritten. Must run under total write exclusion (the server
// schedules checkpoints with a full-catalog write footprint).
func (s *Store) Checkpoint(cat *catalog.Catalog, cover uint64) error {
	for _, name := range cat.Names() {
		rel, err := cat.Get(name)
		if err != nil {
			return err
		}
		if !rel.Stored() {
			if err := s.Adopt(rel, cover); err != nil {
				return err
			}
			continue
		}
		hf := s.file(name)
		if hf == nil {
			return fmt.Errorf("heap: stored relation %q has no open file", name)
		}
		if err := s.pool.FlushFile(hf); err != nil {
			return err
		}
		if err := hf.Checkpoint(cover); err != nil {
			return err
		}
	}
	if err := s.writeManifest(cat); err != nil {
		return err
	}
	return catalog.SyncDir(s.dir)
}

// Rewrite atomically replaces name's heap file with the pages of
// resident at base LSN lsn — the delete path. Cached frames of the
// old file are discarded.
func (s *Store) Rewrite(name string, resident *relation.Relation, lsn uint64) error {
	old := s.file(name)
	if old == nil {
		return fmt.Errorf("heap: rewrite of unknown relation %q", name)
	}
	hf, err := CreateFrom(s.filePath(name), resident, SchemaHash(resident.Schema()), lsn)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.pool.DropFile(old)
	old.Close()
	s.files[name] = hf
	s.mu.Unlock()
	return nil
}

// MinBaseLSN returns the smallest base LSN across all open files — the
// LSN from which WAL replay must begin. Zero when no files are open.
func (s *Store) MinBaseLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var min uint64
	first := true
	for _, hf := range s.files {
		b := hf.BaseLSN()
		if first || b < min {
			min, first = b, false
		}
	}
	return min
}

// MaxBaseLSN returns the largest base LSN across all open files.
func (s *Store) MaxBaseLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max uint64
	for _, hf := range s.files {
		if b := hf.BaseLSN(); b > max {
			max = b
		}
	}
	return max
}

// FileSize returns the physical size of name's heap file.
func (s *Store) FileSize(name string) (int64, error) {
	hf := s.file(name)
	if hf == nil {
		return 0, fmt.Errorf("heap: unknown relation %q", name)
	}
	return hf.Size()
}

// Close closes all heap files. Dirty frames are deliberately NOT
// flushed: everything past each file's base LSN is in the WAL, and an
// unclean close must look exactly like a crash.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, hf := range s.files {
		if err := hf.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = make(map[string]*File)
	return first
}

// backing adapts (Store, relation name) to relation.PageStore. It
// resolves the *File per call so delete rewrites (which swap the
// file) are transparent to the attached Relation.
type backing struct {
	store *Store
	name  string
}

func (b *backing) resolve() *File {
	hf := b.store.file(b.name)
	if hf == nil {
		panic(fmt.Sprintf("heap: relation %q detached from store", b.name))
	}
	return hf
}

func (b *backing) NumPages() int        { return b.resolve().NumPages() }
func (b *backing) PageTuples(i int) int { return b.resolve().PageTuples(i) }
func (b *backing) Cardinality() int     { return b.resolve().Cardinality() }
func (b *backing) BaseLSN() uint64      { return b.resolve().BaseLSN() }

func (b *backing) Pin(i int) (*relation.Page, error) {
	return b.store.pool.Pin(b.resolve(), i)
}

func (b *backing) Unpin(i int, dirty bool) {
	b.store.pool.Unpin(b.resolve(), i, dirty)
}

func (b *backing) Install(i int, p *relation.Page) error {
	return b.store.pool.Install(b.resolve(), i, p)
}

func (b *backing) Rewrite(resident *relation.Relation, lsn uint64) error {
	return b.store.Rewrite(b.name, resident, lsn)
}

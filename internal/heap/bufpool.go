package heap

import (
	"errors"
	"sync"
	"time"

	"dfdbm/internal/obs"
	"dfdbm/internal/relation"
)

// ErrNoFrames is returned by Pin and Install when every frame in the
// pool is pinned and none can be evicted. It is a typed, panic-free
// signal: callers under the admission scheduler's exclusion can retry
// after releasing pins, and tests assert on it directly.
var ErrNoFrames = errors.New("heap: all buffer frames pinned")

// DefaultFrames is the pool budget used when a caller passes a
// non-positive frame count.
const DefaultFrames = 1024

// Pool is the pinning buffer manager — the paper's multiport disk
// cache between mass storage (heap files) and the engines' IC-level
// memory. It holds a fixed budget of frames keyed by (file, page),
// with pin/unpin reference counts, dirty tracking, and CLOCK
// second-chance eviction that writes dirty victims back to their heap
// file before reuse.
//
// Concurrency: one mutex covers the table, the ring, and the I/O done
// on miss/eviction. That serializes disk traffic like the paper's
// single-ported disk would, and keeps the write-back/redirty race
// closed. Readers of an evicted frame stay safe without latching:
// eviction only drops the pool's reference, so a *Page handed out
// earlier remains valid (Go GC) — and writers cannot mutate it
// concurrently because the admission scheduler gives every relation a
// single writer.
type Pool struct {
	mu    sync.Mutex // lock order: Store.mu -> Pool.mu, never the reverse
	cap   int
	table map[frameKey]*frame
	ring  []*frame
	hand  int

	reg   *obs.Registry
	epoch time.Time
}

type frameKey struct {
	f    *File
	page int
}

type frame struct {
	key   frameKey
	pg    *relation.Page
	pins  int
	ref   bool // CLOCK second-chance bit
	dirty bool
}

// NewPool creates a pool with the given frame budget (DefaultFrames
// if frames <= 0). The observer may be nil; when it carries a metrics
// registry the pool maintains bufpool.* counters and gauges and
// charges its I/O time to the bufpool.busy_us timeline.
func NewPool(frames int, o *obs.Observer) *Pool {
	if frames <= 0 {
		frames = DefaultFrames
	}
	p := &Pool{
		cap:   frames,
		table: make(map[frameKey]*frame),
		reg:   o.Registry(),
		epoch: time.Now(),
	}
	if p.reg != nil {
		p.reg.SetGauge("bufpool.frames", float64(frames))
		p.reg.SetGauge("bufpool.frames_in_use", 0)
		p.reg.SetGauge("bufpool.pinned", 0)
	}
	return p
}

// PoolResource is the saturation-attribution spec for the buffer
// pool's disk port: busy time accumulated on bufpool.busy_us, one
// server (the pool serializes its I/O).
func PoolResource() obs.ResourceSpec {
	return obs.ResourceSpec{Name: "bufpool", Timeline: "bufpool.busy_us", Servers: 1}
}

// Cap returns the frame budget.
func (p *Pool) Cap() int { return p.cap }

// Pin returns page i of f pinned in a frame, reading it from disk on
// miss (evicting a victim first when the pool is full). Every Pin
// must be paired with an Unpin.
func (p *Pool) Pin(f *File, i int) (*relation.Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := frameKey{f, i}
	if fr, ok := p.table[key]; ok {
		fr.pins++
		fr.ref = true
		p.count("bufpool.hits", 1)
		p.gauges()
		return fr.pg, nil
	}
	fr, err := p.freeFrameLocked()
	if err != nil {
		return nil, err
	}
	start := time.Since(p.epoch)
	pg, err := f.ReadPage(i)
	p.busy(start)
	if err != nil {
		// The frame stays free (zero-valued key is absent from table).
		return nil, err
	}
	p.count("bufpool.misses", 1)
	fr.key, fr.pg, fr.pins, fr.ref, fr.dirty = key, pg, 1, true, false
	p.table[key] = fr
	p.gauges()
	return pg, nil
}

// Unpin releases one pin on page i of f; dirty marks the frame for
// write-back and folds the page's tuple count into the file's logical
// state.
func (p *Pool) Unpin(f *File, i int, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := frameKey{f, i}
	fr, ok := p.table[key]
	if !ok || fr.pins <= 0 {
		panic("heap: Unpin without matching Pin")
	}
	fr.pins--
	if dirty {
		fr.dirty = true
		if err := f.NotePage(i, fr.pg.TupleCount()); err != nil {
			panic(err) // i is resident in a frame, so it cannot be out of range
		}
	}
	p.gauges()
}

// Install places a full post-image of page i of f into the pool,
// dirty: the one mutation primitive (live appends and WAL replay).
// i may extend the file by exactly one page.
func (p *Pool) Install(f *File, i int, pg *relation.Page) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := frameKey{f, i}
	fr, ok := p.table[key]
	if !ok {
		var err error
		if fr, err = p.freeFrameLocked(); err != nil {
			return err
		}
	}
	if err := f.NotePage(i, pg.TupleCount()); err != nil {
		return err
	}
	fr.key, fr.pg, fr.ref, fr.dirty = key, pg, true, true
	p.table[key] = fr
	p.gauges()
	return nil
}

// freeFrameLocked returns an unused frame: grows the ring while under
// budget, otherwise runs the CLOCK hand over the ring — skipping
// pinned frames, clearing second-chance bits, writing back dirty
// victims — for at most two sweeps. All frames pinned => ErrNoFrames.
func (p *Pool) freeFrameLocked() (*frame, error) {
	if len(p.ring) < p.cap {
		fr := &frame{}
		p.ring = append(p.ring, fr)
		return fr, nil
	}
	for pass := 0; pass < 2*len(p.ring); pass++ {
		fr := p.ring[p.hand]
		p.hand = (p.hand + 1) % len(p.ring)
		if fr.pins > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fr.dirty {
			start := time.Since(p.epoch)
			err := fr.key.f.WritePage(fr.key.page, fr.pg)
			p.busy(start)
			if err != nil {
				return nil, err
			}
			p.count("bufpool.writebacks", 1)
			fr.dirty = false
		}
		delete(p.table, fr.key)
		p.count("bufpool.evictions", 1)
		fr.key, fr.pg = frameKey{}, nil
		return fr, nil
	}
	return nil, ErrNoFrames
}

// FlushFile writes back every dirty frame belonging to f and marks
// them clean. Frames stay resident (a checkpoint does not chill the
// cache).
func (p *Pool) FlushFile(f *File) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, fr := range p.table {
		if key.f != f || !fr.dirty {
			continue
		}
		start := time.Since(p.epoch)
		err := f.WritePage(key.page, fr.pg)
		p.busy(start)
		if err != nil {
			return err
		}
		p.count("bufpool.writebacks", 1)
		fr.dirty = false
	}
	return nil
}

// DropFile discards every frame belonging to f, dirty or not — the
// delete path replaces the whole file, so its cached pages are dead.
func (p *Pool) DropFile(f *File) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, fr := range p.table {
		if key.f != f {
			continue
		}
		delete(p.table, key)
		fr.key, fr.pg, fr.pins, fr.ref, fr.dirty = frameKey{}, nil, 0, false, false
	}
	p.gauges()
}

// Stats is a point-in-time snapshot of the pool for tests and audits.
type Stats struct {
	Cap, InUse, Pinned, Dirty int
}

// Snapshot returns current pool occupancy.
func (p *Pool) Snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{Cap: p.cap, InUse: len(p.table)}
	for _, fr := range p.table {
		if fr.pins > 0 {
			st.Pinned++
		}
		if fr.dirty {
			st.Dirty++
		}
	}
	return st
}

func (p *Pool) count(name string, delta int64) {
	if p.reg != nil {
		p.reg.Inc(name, delta)
	}
}

func (p *Pool) busy(start time.Duration) {
	if p.reg != nil {
		p.reg.AddBusy("bufpool.busy_us", start, time.Since(p.epoch)-start)
	}
}

func (p *Pool) gauges() {
	if p.reg == nil {
		return
	}
	pinned := 0
	for _, fr := range p.table {
		if fr.pins > 0 {
			pinned++
		}
	}
	p.reg.SetGauge("bufpool.frames_in_use", float64(len(p.table)))
	p.reg.SetGauge("bufpool.pinned", float64(pinned))
}

package heap

import (
	"fmt"
	"os"
	"path/filepath"
)

// FileAudit is the offline health report for one relation's heap
// file, produced by Audit for `dfdbm wal inspect`/`wal verify`.
type FileAudit struct {
	Rel      string
	Path     string
	Pages    int
	Tuples   int
	Bytes    int64 // physical file size
	BaseLSN  uint64
	PageSize int
	Err      error // nil = header, geometry, and every slot CRC check out
}

// HasManifest reports whether dir contains a heap-store manifest.
func HasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Audit inspects the heap store in dir without a buffer pool or WAL:
// it parses the manifest, opens each named heap file read-only,
// verifies the header CRC and schema hash against the manifest,
// checks the page count against the physical file size, and reads
// every slot to validate its checksum. One entry is returned per
// manifest relation; a missing or unreadable manifest is the error.
func Audit(dir string) ([]FileAudit, error) {
	ents, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	out := make([]FileAudit, 0, len(ents))
	for _, e := range ents {
		fa := FileAudit{Rel: e.name, Path: filepath.Join(dir, e.name+heapSuffix)}
		fa.Err = auditFile(&fa, e)
		out = append(out, fa)
	}
	return out, nil
}

func auditFile(fa *FileAudit, e manifestEntry) error {
	hf, err := Open(fa.Path, SchemaHash(e.schema))
	if err != nil {
		return err
	}
	defer hf.Close()
	fa.Pages = hf.NumPages()
	fa.Tuples = hf.Cardinality()
	fa.BaseLSN = hf.BaseLSN()
	fa.PageSize = hf.pageSize
	if fa.Bytes, err = hf.Size(); err != nil {
		return err
	}
	if hf.pageSize != e.pageSize || hf.tupleLen != e.schema.TupleLen() {
		return fmt.Errorf("%w: geometry %d/%d does not match manifest %d/%d",
			ErrCorrupt, hf.pageSize, hf.tupleLen, e.pageSize, e.schema.TupleLen())
	}
	// Page count vs physical size: the file must hold at least the
	// header area plus all live slots. (It may be longer between a
	// crashed write-back and the next checkpoint's truncate.)
	if want := dataOff + int64(hf.pages)*hf.slotSize; fa.Bytes < want && hf.pages > 0 {
		return fmt.Errorf("%w: %d pages need %d bytes, file has %d", ErrCorrupt, hf.pages, want, fa.Bytes)
	}
	for i := 0; i < hf.NumPages(); i++ {
		if _, err := hf.ReadPage(i); err != nil {
			return err
		}
	}
	return nil
}

package heap

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dfdbm/internal/catalog"
	"dfdbm/internal/obs"
	"dfdbm/internal/relation"
)

func testSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema(
		relation.Attr{Name: "a", Type: relation.Int64},
		relation.Attr{Name: "b", Type: relation.Int64},
	)
}

// seedRelation builds a resident relation with n tuples of (i, i*10).
func seedRelation(t *testing.T, name string, schema *relation.Schema, pageSize, n int) *relation.Relation {
	t.Helper()
	rel := relation.MustNew(name, schema, pageSize)
	for i := 0; i < n; i++ {
		if err := rel.Insert(relation.Tuple{relation.IntVal(int64(i)), relation.IntVal(int64(i * 10))}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return rel
}

func TestFileCreateFromRoundtrip(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	rel := seedRelation(t, "r", schema, 256, 100) // 16-byte tuples, 15/page
	path := filepath.Join(dir, "r.heap")

	hf, err := CreateFrom(path, rel, SchemaHash(schema), 7)
	if err != nil {
		t.Fatalf("CreateFrom: %v", err)
	}
	if hf.NumPages() != rel.NumPages() {
		t.Fatalf("pages = %d, want %d", hf.NumPages(), rel.NumPages())
	}
	if hf.Cardinality() != 100 {
		t.Fatalf("cardinality = %d, want 100", hf.Cardinality())
	}
	if hf.BaseLSN() != 7 {
		t.Fatalf("baseLSN = %d, want 7", hf.BaseLSN())
	}
	for i := 0; i < rel.NumPages(); i++ {
		got, err := hf.ReadPage(i)
		if err != nil {
			t.Fatalf("ReadPage(%d): %v", i, err)
		}
		want := rel.Page(i).Marshal()
		if string(got.Marshal()) != string(want) {
			t.Fatalf("page %d not byte-identical after roundtrip", i)
		}
	}
	if err := hf.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: logical state must come back from the header + slot scan.
	hf2, err := Open(path, SchemaHash(schema))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer hf2.Close()
	if hf2.NumPages() != rel.NumPages() || hf2.Cardinality() != 100 || hf2.BaseLSN() != 7 {
		t.Fatalf("reopened state pages=%d card=%d base=%d", hf2.NumPages(), hf2.Cardinality(), hf2.BaseLSN())
	}
}

func TestFileSchemaHashMismatch(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	rel := seedRelation(t, "r", schema, 256, 10)
	path := filepath.Join(dir, "r.heap")
	hf, err := CreateFrom(path, rel, SchemaHash(schema), 1)
	if err != nil {
		t.Fatalf("CreateFrom: %v", err)
	}
	hf.Close()
	if _, err := Open(path, SchemaHash(schema)+1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with wrong schema hash: err = %v, want ErrCorrupt", err)
	}
}

func TestFileHeaderPingPong(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	rel := seedRelation(t, "r", schema, 256, 30)
	path := filepath.Join(dir, "r.heap")
	hf, err := CreateFrom(path, rel, SchemaHash(schema), 1)
	if err != nil {
		t.Fatalf("CreateFrom: %v", err)
	}
	// Advance the header once: seq 2 lands in block 0, seq 1 is in
	// block 1. Then tear the newest block; Open must fall back to the
	// older header (baseLSN 1) instead of failing.
	if err := hf.Checkpoint(9); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	newest := int64(hf.seq%2) * headerBlockLen
	hf.Close()

	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, newest+20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	hf2, err := Open(path, SchemaHash(schema))
	if err != nil {
		t.Fatalf("Open after torn newest header: %v", err)
	}
	defer hf2.Close()
	if hf2.BaseLSN() != 1 {
		t.Fatalf("baseLSN = %d, want fallback header's 1", hf2.BaseLSN())
	}

	// Both headers torn: hard corrupt.
	f, err = os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < 2*headerBlockLen; off += headerBlockLen {
		if _, err := f.WriteAt([]byte{0xAA, 0xAA, 0xAA, 0xAA}, off+20); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if _, err := Open(path, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with both headers torn: err = %v, want ErrCorrupt", err)
	}
}

func TestFileSlotCRC(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	rel := seedRelation(t, "r", schema, 256, 30)
	path := filepath.Join(dir, "r.heap")
	hf, err := CreateFrom(path, rel, SchemaHash(schema), 1)
	if err != nil {
		t.Fatalf("CreateFrom: %v", err)
	}
	slotSize := hf.slotSize
	hf.Close()

	// Flip one payload byte in slot 1: its CRC must catch it.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	off := dataOff + slotSize + slotHeaderLen + 20
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	hf2, err := Open(path, SchemaHash(schema))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer hf2.Close()
	if _, err := hf2.ReadPage(0); err != nil {
		t.Fatalf("ReadPage(0) should be clean: %v", err)
	}
	if _, err := hf2.ReadPage(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadPage(1): err = %v, want ErrCorrupt", err)
	}
}

func TestPoolPinEvictWriteBack(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	rel := seedRelation(t, "r", schema, 256, 90) // 6 pages at 15/page
	path := filepath.Join(dir, "r.heap")
	hf, err := CreateFrom(path, rel, SchemaHash(schema), 1)
	if err != nil {
		t.Fatalf("CreateFrom: %v", err)
	}
	defer hf.Close()

	reg := obs.NewRegistry(0)
	pool := NewPool(4, obs.New(nil, reg))

	// Touch every page: 6 pages through 4 frames forces evictions.
	for i := 0; i < hf.NumPages(); i++ {
		pg, err := pool.Pin(hf, i)
		if err != nil {
			t.Fatalf("Pin(%d): %v", i, err)
		}
		if pg.TupleCount() != hf.PageTuples(i) {
			t.Fatalf("page %d tuples = %d, want %d", i, pg.TupleCount(), hf.PageTuples(i))
		}
		pool.Unpin(hf, i, false)
	}
	if ev := reg.Counter("bufpool.evictions"); ev == 0 {
		t.Fatal("expected evictions > 0 scanning 6 pages through 4 frames")
	}
	if st := pool.Snapshot(); st.InUse != 4 || st.Pinned != 0 {
		t.Fatalf("snapshot = %+v, want 4 in use, 0 pinned", st)
	}

	// Dirty a page, evict it by scanning, and verify the write-back
	// reached the file.
	pg, err := pool.Pin(hf, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, schema.TupleLen())
	binary.LittleEndian.PutUint64(raw[0:8], 4242)
	// Page 0 is full (15/15) — drop to a fresh post-image instead.
	fresh := relation.MustNewPage(256, schema.TupleLen())
	if err := fresh.AppendRaw(raw); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(hf, 0, false)
	_ = pg
	if err := pool.Install(hf, 0, fresh); err != nil {
		t.Fatalf("Install: %v", err)
	}
	for i := 1; i < hf.NumPages(); i++ { // churn the pool to evict slot 0
		if _, err := pool.Pin(hf, i); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(hf, i, false)
	}
	if wb := reg.Counter("bufpool.writebacks"); wb == 0 {
		t.Fatal("expected a write-back of the dirty installed page")
	}
	got, err := hf.ReadPage(0)
	if err != nil {
		t.Fatalf("ReadPage(0) after write-back: %v", err)
	}
	if got.TupleCount() != 1 {
		t.Fatalf("written-back page has %d tuples, want 1", got.TupleCount())
	}
}

func TestPoolAllPinned(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	rel := seedRelation(t, "r", schema, 256, 60)
	hf, err := CreateFrom(filepath.Join(dir, "r.heap"), rel, SchemaHash(schema), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()

	pool := NewPool(2, nil)
	if _, err := pool.Pin(hf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Pin(hf, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Pin(hf, 2); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("Pin with all frames pinned: err = %v, want ErrNoFrames", err)
	}
	pool.Unpin(hf, 1, false)
	if _, err := pool.Pin(hf, 2); err != nil {
		t.Fatalf("Pin after release: %v", err)
	}
}

func TestStoreAdoptLoadCheckpoint(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	store, err := OpenStore(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	cat := catalog.New()
	r1 := seedRelation(t, "r1", schema, 256, 50)
	r2 := seedRelation(t, "r2", schema, 256, 80)
	wantKeys1, wantKeys2 := r1.SortedKeys(), r2.SortedKeys()
	cat.Put(r1)
	cat.Put(r2)

	if err := store.Checkpoint(cat, 11); err != nil {
		t.Fatalf("Checkpoint (adopt): %v", err)
	}
	if !r1.Stored() || !r2.Stored() {
		t.Fatal("relations should be stored after checkpoint adoption")
	}
	if !store.ManifestExists() {
		t.Fatal("manifest missing after checkpoint")
	}

	// Stored relations still append and read through the pool.
	if err := r1.Insert(relation.Tuple{relation.IntVal(999), relation.IntVal(9990)}); err != nil {
		t.Fatalf("stored insert: %v", err)
	}
	if r1.Cardinality() != 51 {
		t.Fatalf("cardinality = %d, want 51", r1.Cardinality())
	}
	if err := store.Checkpoint(cat, 12); err != nil {
		t.Fatalf("second checkpoint: %v", err)
	}
	store.Close()

	// Fresh store: LoadCatalog rebuilds from manifest + files.
	store2, err := OpenStore(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	cat2, err := store2.LoadCatalog()
	if err != nil {
		t.Fatalf("LoadCatalog: %v", err)
	}
	g1, err := cat2.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if g1.Cardinality() != 51 {
		t.Fatalf("loaded r1 cardinality = %d, want 51", g1.Cardinality())
	}
	if g1.StoreBaseLSN() != 12 {
		t.Fatalf("r1 baseLSN = %d, want 12", g1.StoreBaseLSN())
	}
	g2, err := cat2.Get("r2")
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.SortedKeys(); len(got) != len(wantKeys2) {
		t.Fatalf("r2 has %d tuples, want %d", len(got), len(wantKeys2))
	}
	_ = wantKeys1
}

func TestStoreRewrite(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	store, err := OpenStore(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cat := catalog.New()
	r := seedRelation(t, "r", schema, 256, 60)
	cat.Put(r)
	if err := store.Checkpoint(cat, 5); err != nil {
		t.Fatal(err)
	}

	// Materialize, drop the first half, swap — the stored delete path.
	resident, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	kept := relation.MustNew("r", schema, 256)
	if err := resident.Each(func(tp relation.Tuple) bool {
		if tp[0].Int >= 30 {
			if err := kept.Insert(tp); err != nil {
				t.Fatal(err)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReplaceStored(kept, 42); err != nil {
		t.Fatalf("ReplaceStored: %v", err)
	}
	if r.Cardinality() != 30 {
		t.Fatalf("cardinality after rewrite = %d, want 30", r.Cardinality())
	}
	if r.StoreBaseLSN() != 42 {
		t.Fatalf("baseLSN after rewrite = %d, want 42", r.StoreBaseLSN())
	}
	if !r.EqualMultiset(kept) {
		t.Fatal("rewritten relation does not match the survivor set")
	}
}

func TestAuditCatchesCorruption(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	store, err := OpenStore(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	cat.Put(seedRelation(t, "good", schema, 256, 40))
	cat.Put(seedRelation(t, "bad", schema, 256, 40))
	if err := store.Checkpoint(cat, 3); err != nil {
		t.Fatal(err)
	}
	store.Close()

	// Corrupt one slot payload byte of "bad".
	f, err := os.OpenFile(filepath.Join(dir, "bad.heap"), os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := int64(dataOff + slotHeaderLen + 25)
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	audits, err := Audit(dir)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if len(audits) != 2 {
		t.Fatalf("audited %d files, want 2", len(audits))
	}
	byRel := map[string]FileAudit{}
	for _, a := range audits {
		byRel[a.Rel] = a
	}
	if byRel["good"].Err != nil {
		t.Fatalf("good: unexpected audit error %v", byRel["good"].Err)
	}
	if byRel["good"].Tuples != 40 || byRel["good"].BaseLSN != 3 {
		t.Fatalf("good audit = %+v", byRel["good"])
	}
	if !errors.Is(byRel["bad"].Err, ErrCorrupt) {
		t.Fatalf("bad: err = %v, want ErrCorrupt", byRel["bad"].Err)
	}
}

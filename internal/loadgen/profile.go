package loadgen

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Profile is one declarative load shape: a sequence of phases replayed
// against a server, each with its own arrival pattern, query mix,
// session count, and SLO. Durations inside a profile are in simulated
// time; replay divides them by the time scale, while rates (qps) are
// already per wall second of replay — so a 24h profile at scale 1440
// plays in about a minute at exactly the offered load it declares.
type Profile struct {
	Name string
	// Seed drives every random choice (arrival times, query mix), so a
	// profile replays the same schedule on every run. Default 1.
	Seed int64
	// TimeScale compresses simulated time: 1440 replays a day in a
	// minute. Default 1; the CLI's -time-scale flag overrides it.
	TimeScale float64
	// Interval is the timeline resolution in simulated time: one row of
	// offered/completed QPS, quantiles, and SLO verdicts per interval.
	// Default 30m.
	Interval time.Duration
	// Grace is how many intervals at the start of each phase are exempt
	// from SLO evaluation, giving control loops (autoscaler, pool
	// drain) their reaction time. Default 1.
	Grace int
	// Phases play in order; the profile ends after the last.
	Phases []Phase
	// Events fire once at their simulated offset from profile start.
	Events []EventSpec
	// Autoscale, when present, is the runner-pool policy the CLI
	// applies when autoscaling is requested.
	Autoscale *AutoscalePolicy
}

// Phase is one contiguous stretch of the simulated day.
type Phase struct {
	Name     string
	Duration time.Duration // simulated
	// Pattern shapes the arrival rate across the phase: "steady" (QPS
	// throughout), "ramp" (QPS to QPSEnd linearly), "burst" (QPS
	// baseline plus PeakQPS on top during periodic windows), "diurnal"
	// (sinusoid from QPS up to PeakQPS and back).
	Pattern string
	QPS     float64
	QPSEnd  float64       // ramp target
	PeakQPS float64       // burst/diurnal peak
	BurstEvery time.Duration // simulated period between burst windows
	BurstLen   time.Duration // simulated burst window length
	// Sessions is the number of concurrent client sessions offering
	// this phase's load. Default 8.
	Sessions int
	// WriteFraction is the probability an arrival is a write (append or
	// delete) instead of a read from the mix. Default 0.
	WriteFraction float64
	// Mix weights the read classes; normalized at decode. Default
	// {point: 0.6, join: 0.3, heavy: 0.1}.
	Mix Mix
	// SLO, when non-nil, is evaluated per interval against this phase.
	SLO *SLO
}

// Mix weights the read-query classes over workload.QueryTexts():
// point restricts, single joins, and multi-join heavies.
type Mix struct {
	Point, Join, Heavy float64
}

// SLO bounds one phase's per-interval service quality. Zero duration
// quantile bounds and negative rate bounds are unchecked.
type SLO struct {
	P50, P95, P99 time.Duration
	// ShedRate bounds (shed + client-dropped) / offered.
	ShedRate float64
	// ErrorRate bounds errors / offered.
	ErrorRate float64
}

// EventSpec is one scheduled disturbance.
type EventSpec struct {
	At   time.Duration // simulated offset from profile start
	Kind string        // "maintenance", "slowdown", "bulk_append"
	// Slowdown: every query execution is delayed by Delay for Duration
	// of simulated time — the degraded-node fault.
	Duration time.Duration
	Delay    time.Duration
	// Bulk append: Count append queries into Relation.
	Relation string
	Count    int
}

// AutoscalePolicy mirrors sched.AutoscaleConfig in profile form; the
// CLI translates it when autoscaling is enabled. Zero fields use the
// scheduler's defaults.
type AutoscalePolicy struct {
	Min, Max  int
	Interval  time.Duration
	HighDepth float64
	HighWait  time.Duration
	LowUtil   float64
	Hold      int
	Cooldown  time.Duration
}

// Rate returns the offered arrival rate (queries per wall second) at
// simulated offset t into the phase.
func (ph *Phase) Rate(t time.Duration) float64 {
	switch ph.Pattern {
	case "ramp":
		if ph.Duration <= 0 {
			return ph.QPS
		}
		f := float64(t) / float64(ph.Duration)
		return ph.QPS + (ph.QPSEnd-ph.QPS)*f
	case "burst":
		if ph.BurstEvery > 0 && t%ph.BurstEvery < ph.BurstLen {
			return ph.QPS + ph.PeakQPS
		}
		return ph.QPS
	case "diurnal":
		if ph.Duration <= 0 {
			return ph.QPS
		}
		f := float64(t) / float64(ph.Duration)
		return ph.QPS + (ph.PeakQPS-ph.QPS)*(1-math.Cos(2*math.Pi*f))/2
	default: // steady
		return ph.QPS
	}
}

// MaxRate returns an upper bound on Rate over the phase, for thinning.
func (ph *Phase) MaxRate() float64 {
	m := ph.QPS
	switch ph.Pattern {
	case "ramp":
		m = math.Max(ph.QPS, ph.QPSEnd)
	case "burst":
		m = ph.QPS + ph.PeakQPS
	case "diurnal":
		m = math.Max(ph.QPS, ph.PeakQPS)
	}
	return m
}

// TotalDuration returns the profile's simulated length.
func (p *Profile) TotalDuration() time.Duration {
	var d time.Duration
	for i := range p.Phases {
		d += p.Phases[i].Duration
	}
	return d
}

// PhaseAt returns the phase covering simulated offset t and t's offset
// into it. Past the end it returns the last phase.
func (p *Profile) PhaseAt(t time.Duration) (int, *Phase, time.Duration) {
	off := t
	for i := range p.Phases {
		if off < p.Phases[i].Duration {
			return i, &p.Phases[i], off
		}
		off -= p.Phases[i].Duration
	}
	last := len(p.Phases) - 1
	return last, &p.Phases[last], p.Phases[last].Duration
}

// ParseProfile decodes and validates a YAML load profile.
func ParseProfile(src []byte) (*Profile, error) {
	v, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("profile: top level must be a map")
	}
	d := &decoder{}
	p := &Profile{
		Name:      d.str(m, "name", "unnamed"),
		Seed:      d.int64(m, "seed", 1),
		TimeScale: d.float(m, "time_scale", 1),
		Interval:  d.dur(m, "interval", 30*time.Minute),
		Grace:     int(d.int64(m, "grace", 1)),
	}
	for i, pv := range d.list(m, "phases") {
		pm, ok := pv.(map[string]any)
		if !ok {
			d.errf("phases[%d]: must be a map", i)
			continue
		}
		ph := Phase{
			Name:          d.str(pm, "name", fmt.Sprintf("phase%d", i)),
			Duration:      d.dur(pm, "duration", 0),
			Pattern:       d.str(pm, "pattern", "steady"),
			QPS:           d.float(pm, "qps", 0),
			QPSEnd:        d.float(pm, "qps_end", 0),
			PeakQPS:       d.float(pm, "peak_qps", 0),
			BurstEvery:    d.dur(pm, "burst_every", 0),
			BurstLen:      d.dur(pm, "burst_len", 0),
			Sessions:      int(d.int64(pm, "sessions", 8)),
			WriteFraction: d.float(pm, "write_fraction", 0),
			Mix:           Mix{Point: 0.6, Join: 0.3, Heavy: 0.1},
		}
		if mm, found := pm["mix"].(map[string]any); found {
			ph.Mix = Mix{
				Point: d.float(mm, "point", 0),
				Join:  d.float(mm, "join", 0),
				Heavy: d.float(mm, "heavy", 0),
			}
		}
		if sm, found := pm["slo"].(map[string]any); found {
			ph.SLO = &SLO{
				P50:       d.dur(sm, "p50", 0),
				P95:       d.dur(sm, "p95", 0),
				P99:       d.dur(sm, "p99", 0),
				ShedRate:  d.float(sm, "shed_rate", -1),
				ErrorRate: d.float(sm, "error_rate", -1),
			}
		}
		d.validatePhase(i, &ph)
		p.Phases = append(p.Phases, ph)
	}
	if len(p.Phases) == 0 {
		d.errf("profile needs at least one phase")
	}
	for i, ev := range d.list(m, "events") {
		em, ok := ev.(map[string]any)
		if !ok {
			d.errf("events[%d]: must be a map", i)
			continue
		}
		e := EventSpec{
			At:       d.dur(em, "at", 0),
			Kind:     d.str(em, "kind", ""),
			Duration: d.dur(em, "duration", 10*time.Minute),
			Delay:    d.dur(em, "delay", 5*time.Millisecond),
			Relation: d.str(em, "relation", "r1"),
			Count:    int(d.int64(em, "count", 5)),
		}
		switch e.Kind {
		case "maintenance", "slowdown", "bulk_append":
		default:
			d.errf("events[%d]: unknown kind %q (want maintenance, slowdown, or bulk_append)", i, e.Kind)
		}
		p.Events = append(p.Events, e)
	}
	if am, found := m["autoscale"].(map[string]any); found {
		p.Autoscale = &AutoscalePolicy{
			Min:       int(d.int64(am, "min", 0)),
			Max:       int(d.int64(am, "max", 0)),
			Interval:  d.dur(am, "interval", 0),
			HighDepth: d.float(am, "high_depth", 0),
			HighWait:  d.dur(am, "high_wait", 0),
			LowUtil:   d.float(am, "low_util", 0),
			Hold:      int(d.int64(am, "hold", 0)),
			Cooldown:  d.dur(am, "cooldown", 0),
		}
	}
	if p.TimeScale <= 0 {
		d.errf("time_scale must be positive")
	}
	if p.Interval <= 0 {
		d.errf("interval must be positive")
	}
	if err := d.err(); err != nil {
		return nil, err
	}
	return p, nil
}

func (d *decoder) validatePhase(i int, ph *Phase) {
	if ph.Duration <= 0 {
		d.errf("phases[%d] (%s): duration must be positive", i, ph.Name)
	}
	if ph.QPS < 0 {
		d.errf("phases[%d] (%s): qps must be non-negative", i, ph.Name)
	}
	switch ph.Pattern {
	case "steady":
	case "ramp":
		if ph.QPSEnd <= 0 {
			d.errf("phases[%d] (%s): ramp needs qps_end", i, ph.Name)
		}
	case "burst":
		if ph.PeakQPS <= 0 || ph.BurstEvery <= 0 || ph.BurstLen <= 0 {
			d.errf("phases[%d] (%s): burst needs peak_qps, burst_every, and burst_len", i, ph.Name)
		}
	case "diurnal":
		if ph.PeakQPS <= 0 {
			d.errf("phases[%d] (%s): diurnal needs peak_qps", i, ph.Name)
		}
	default:
		d.errf("phases[%d] (%s): unknown pattern %q", i, ph.Name, ph.Pattern)
	}
	if ph.Sessions <= 0 {
		d.errf("phases[%d] (%s): sessions must be positive", i, ph.Name)
	}
	if ph.WriteFraction < 0 || ph.WriteFraction > 1 {
		d.errf("phases[%d] (%s): write_fraction must be in [0,1]", i, ph.Name)
	}
	if w := ph.Mix.Point + ph.Mix.Join + ph.Mix.Heavy; w <= 0 {
		d.errf("phases[%d] (%s): mix weights must sum to a positive value", i, ph.Name)
	}
}

// decoder accumulates type-coercion errors across a whole profile, so
// one parse reports every problem at once.
type decoder struct {
	errs []string
}

func (d *decoder) errf(format string, args ...any) {
	d.errs = append(d.errs, fmt.Sprintf(format, args...))
}

func (d *decoder) err() error {
	if len(d.errs) == 0 {
		return nil
	}
	msg := d.errs[0]
	for _, e := range d.errs[1:] {
		msg += "; " + e
	}
	return fmt.Errorf("profile: %s", msg)
}

func (d *decoder) str(m map[string]any, key, def string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.errf("%s: expected a string", key)
		return def
	}
	return s
}

func (d *decoder) float(m map[string]any, key string, def float64) float64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.errf("%s: expected a number", key)
		return def
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.errf("%s: bad number %q", key, s)
		return def
	}
	return f
}

func (d *decoder) int64(m map[string]any, key string, def int64) int64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.errf("%s: expected an integer", key)
		return def
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		d.errf("%s: bad integer %q", key, s)
		return def
	}
	return n
}

func (d *decoder) dur(m map[string]any, key string, def time.Duration) time.Duration {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.errf("%s: expected a duration", key)
		return def
	}
	dur, err := time.ParseDuration(s)
	if err != nil {
		d.errf("%s: bad duration %q", key, s)
		return def
	}
	return dur
}

func (d *decoder) list(m map[string]any, key string) []any {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	l, ok := v.([]any)
	if !ok {
		d.errf("%s: expected a list", key)
		return nil
	}
	return l
}

package loadgen

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

const testProfile = `
name: mini-day
seed: 11
time_scale: 720
interval: 30m
grace: 1
phases:
  - name: night
    duration: 4h
    qps: 6
    sessions: 4
    write_fraction: 0.1
    slo: {p99: 200ms, shed_rate: 0.02}
  - name: ramp-up
    duration: 2h
    pattern: ramp
    qps: 6
    qps_end: 30
  - name: peak
    duration: 3h
    pattern: diurnal
    qps: 10
    peak_qps: 40
    mix: {point: 0.3, join: 0.4, heavy: 0.3}
  - name: burst
    duration: 2h
    pattern: burst
    qps: 8
    peak_qps: 50
    burst_every: 40m
    burst_len: 10m
events:
  - at: 1h
    kind: maintenance
  - at: 5h
    kind: slowdown
    delay: 2ms
    duration: 30m
  - at: 9h
    kind: bulk_append
    relation: r11
    count: 3
autoscale:
  min: 2
  max: 16
`

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile([]byte(testProfile))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mini-day" || p.Seed != 11 || p.TimeScale != 720 || p.Interval != 30*time.Minute {
		t.Fatalf("header = %+v", p)
	}
	if len(p.Phases) != 4 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	night := p.Phases[0]
	if night.Duration != 4*time.Hour || night.QPS != 6 || night.Sessions != 4 || night.WriteFraction != 0.1 {
		t.Fatalf("night = %+v", night)
	}
	if night.SLO == nil || night.SLO.P99 != 200*time.Millisecond || night.SLO.ShedRate != 0.02 {
		t.Fatalf("night slo = %+v", night.SLO)
	}
	if night.SLO.P50 != 0 || night.SLO.ErrorRate != -1 {
		t.Fatalf("unset slo bounds should be unchecked: %+v", night.SLO)
	}
	if p.Phases[2].Mix != (Mix{Point: 0.3, Join: 0.4, Heavy: 0.3}) {
		t.Fatalf("peak mix = %+v", p.Phases[2].Mix)
	}
	if p.TotalDuration() != 11*time.Hour {
		t.Fatalf("total = %v", p.TotalDuration())
	}
	if len(p.Events) != 3 || p.Events[1].Delay != 2*time.Millisecond || p.Events[2].Count != 3 {
		t.Fatalf("events = %+v", p.Events)
	}
	if p.Autoscale == nil || p.Autoscale.Min != 2 || p.Autoscale.Max != 16 {
		t.Fatalf("autoscale = %+v", p.Autoscale)
	}
	if i, ph, off := p.PhaseAt(4*time.Hour + 30*time.Minute); i != 1 || ph.Name != "ramp-up" || off != 30*time.Minute {
		t.Fatalf("PhaseAt = %d %s %v", i, ph.Name, off)
	}
}

func TestParseProfileRejectsBadInput(t *testing.T) {
	for _, tc := range []struct{ name, src, wantSub string }{
		{"no phases", "name: x", "at least one phase"},
		{"bad pattern", "phases:\n  - duration: 1h\n    qps: 1\n    pattern: wavy", "unknown pattern"},
		{"ramp sans end", "phases:\n  - duration: 1h\n    qps: 1\n    pattern: ramp", "qps_end"},
		{"bad duration", "phases:\n  - duration: soon\n    qps: 1", "bad duration"},
		{"bad event", "phases:\n  - duration: 1h\n    qps: 1\nevents:\n  - at: 5m\n    kind: meteor", "unknown kind"},
	} {
		if _, err := ParseProfile([]byte(tc.src)); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestPhaseRatePatterns pins the arrival-rate shapes.
func TestPhaseRatePatterns(t *testing.T) {
	ramp := Phase{Pattern: "ramp", QPS: 10, QPSEnd: 30, Duration: time.Hour}
	if r := ramp.Rate(30 * time.Minute); r < 19.9 || r > 20.1 {
		t.Errorf("ramp midpoint = %v, want 20", r)
	}
	burst := Phase{Pattern: "burst", QPS: 5, PeakQPS: 20, BurstEvery: 40 * time.Minute, BurstLen: 10 * time.Minute, Duration: 2 * time.Hour}
	if r := burst.Rate(5 * time.Minute); r != 25 {
		t.Errorf("in-burst rate = %v, want 25", r)
	}
	if r := burst.Rate(20 * time.Minute); r != 5 {
		t.Errorf("off-burst rate = %v, want 5", r)
	}
	if r := burst.Rate(45 * time.Minute); r != 25 {
		t.Errorf("second burst window rate = %v, want 25", r)
	}
	di := Phase{Pattern: "diurnal", QPS: 4, PeakQPS: 40, Duration: 24 * time.Hour}
	if r := di.Rate(0); r != 4 {
		t.Errorf("diurnal start = %v, want base 4", r)
	}
	if r := di.Rate(12 * time.Hour); r < 39.9 || r > 40.1 {
		t.Errorf("diurnal noon = %v, want peak 40", r)
	}
	if m := di.MaxRate(); m != 40 {
		t.Errorf("diurnal max = %v", m)
	}
}

// TestBuildPlanDeterministicAndShaped: the same seed yields the same
// schedule, arrival counts track the patterns, and every arrival
// carries a valid class/lane/text.
func TestBuildPlanDeterministicAndShaped(t *testing.T) {
	p, err := ParseProfile([]byte(testProfile))
	if err != nil {
		t.Fatal(err)
	}
	const scale = 720
	a := buildPlan(p, scale, rand.New(rand.NewSource(p.Seed)))
	b := buildPlan(p, scale, rand.New(rand.NewSource(p.Seed)))
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("plans differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Offered load per phase ≈ wall duration × mean rate.
	counts := map[int]int{}
	writes := 0
	for i := range a {
		counts[a[i].phase]++
		if a[i].class == classWrite {
			writes++
		}
		if a[i].text == "" || a[i].lane > 2 {
			t.Fatalf("arrival %d malformed: %+v", i, a[i])
		}
		if i > 0 && a[i].wall < a[i-1].wall {
			t.Fatalf("plan not time-ordered at %d", i)
		}
	}
	// night: 4h/720 = 20s wall at 6 qps ≈ 120 arrivals.
	if n := counts[0]; n < 60 || n > 200 {
		t.Errorf("night arrivals = %d, want ≈120", n)
	}
	// ramp-up: 10s wall at mean 18 qps ≈ 180.
	if n := counts[1]; n < 100 || n > 280 {
		t.Errorf("ramp arrivals = %d, want ≈180", n)
	}
	// ~10% of night should be writes; across the whole plan well below
	// a third.
	if writes == 0 || writes > len(a)/3 {
		t.Errorf("writes = %d of %d", writes, len(a))
	}
}

package loadgen

import (
	"fmt"
	"math/rand"
	"time"

	"dfdbm/internal/workload"
)

// Query classes over workload.QueryTexts(): texts[0:2] are point
// restricts, [2:5] single joins, [5:10] multi-join heavies. Reads map
// onto admission lanes by interactivity — point queries ride the high
// lane, joins normal, heavies low — so per-lane timeline quantiles
// exercise the whole scheduler, and writes share the normal lane with
// joins.
const (
	classPoint = "point"
	classJoin  = "join"
	classHeavy = "heavy"
	classWrite = "write"
)

// arrival is one pre-scheduled query: the full plan is generated up
// front from the profile's seed, so a run's offered load is a pure
// function of (profile, time scale) and replays identically.
type arrival struct {
	wall  time.Duration // offset from run start, wall clock
	sim   time.Duration // the same instant in simulated time
	phase int
	class string
	lane  uint8
	text  string
}

// buildPlan expands the profile into its full arrival schedule at the
// given time scale, via Poisson thinning per phase: candidate arrivals
// come from a homogeneous process at the phase's max rate, and each
// survives with probability rate(t)/maxRate — a nonhomogeneous Poisson
// process matching the phase's pattern exactly, still deterministic
// under the seed.
func buildPlan(p *Profile, timeScale float64, rng *rand.Rand) []arrival {
	texts := workload.QueryTexts()
	var plan []arrival
	var wallBase, simBase time.Duration
	for pi := range p.Phases {
		ph := &p.Phases[pi]
		wallDur := time.Duration(float64(ph.Duration) / timeScale)
		maxRate := ph.MaxRate()
		if maxRate <= 0 || wallDur <= 0 {
			wallBase += wallDur
			simBase += ph.Duration
			continue
		}
		for t := expGap(rng, maxRate); t < wallDur; t += expGap(rng, maxRate) {
			simT := time.Duration(float64(t) * timeScale)
			if rng.Float64()*maxRate > ph.Rate(simT) {
				continue // thinned: instantaneous rate is below the bound
			}
			a := arrival{
				wall:  wallBase + t,
				sim:   simBase + simT,
				phase: pi,
			}
			a.class, a.lane, a.text = pickQuery(ph, texts, rng)
			plan = append(plan, a)
		}
		wallBase += wallDur
		simBase += ph.Duration
	}
	return plan
}

// expGap draws an exponential inter-arrival gap for rate r per wall
// second.
func expGap(rng *rand.Rand, r float64) time.Duration {
	return time.Duration(rng.ExpFloat64() / r * float64(time.Second))
}

func pickQuery(ph *Phase, texts []string, rng *rand.Rand) (class string, lane uint8, text string) {
	if ph.WriteFraction > 0 && rng.Float64() < ph.WriteFraction {
		return classWrite, 1, writeText(rng)
	}
	w := rng.Float64() * (ph.Mix.Point + ph.Mix.Join + ph.Mix.Heavy)
	switch {
	case w < ph.Mix.Point:
		return classPoint, 0, texts[rng.Intn(2)]
	case w < ph.Mix.Point+ph.Mix.Join:
		return classJoin, 1, texts[2+rng.Intn(3)]
	default:
		return classHeavy, 2, texts[5+rng.Intn(5)]
	}
}

// writeText generates an append or delete. Appends copy a slice of a
// source relation into the target and deletes trim the same value
// range, so over a long run the written relations stay near their
// seeded size instead of growing without bound.
func writeText(rng *rand.Rand) string {
	target := fmt.Sprintf("r%d", 11+rng.Intn(4)) // r11..r14
	bound := 20 + rng.Intn(40)
	if rng.Intn(2) == 0 {
		src := fmt.Sprintf("r%d", 1+rng.Intn(4)) // r1..r4
		return fmt.Sprintf("append(%s, restrict(%s, val < %d))", target, src, bound)
	}
	return fmt.Sprintf("delete(%s, val < %d)", target, bound)
}

// laneName maps a wire priority to its lane label in timelines.
func laneName(lane uint8) string {
	switch lane {
	case 0:
		return "high"
	case 1:
		return "normal"
	default:
		return "low"
	}
}

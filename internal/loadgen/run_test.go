package loadgen

import (
	"context"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"dfdbm/internal/obs"
	"dfdbm/internal/sched"
	"dfdbm/internal/server"
	"dfdbm/internal/workload"
)

// e2eProfile is a compressed two-phase day: a calm stretch one runner
// handles, then a rush that outruns it. The slowdown event pins the
// per-query service time at 25ms, so capacity is runners × 40 qps and
// the rush (60 qps offered) mathematically swamps a fixed pool of one
// — making the SLO verdicts deterministic, not a timing accident.
const e2eProfile = `
name: e2e-rush
seed: 7
time_scale: 5
interval: 5s
grace: 2
phases:
  - name: calm
    duration: 30s
    qps: 10
    sessions: 8
    write_fraction: 0.05
    slo: {p99: 2s, shed_rate: 0.5}
  - name: rush
    duration: 30s
    qps: 60
    sessions: 16
    slo: {p99: 1s, shed_rate: 0.2}
events:
  - at: 1s
    kind: slowdown
    delay: 25ms
    duration: 58s
  - at: 10s
    kind: maintenance
  - at: 15s
    kind: bulk_append
    relation: r11
    count: 2
`

func e2eRun(t *testing.T, autoscale *sched.AutoscaleConfig) *Report {
	t.Helper()
	cat, _, err := workload.Build(workload.Config{Seed: 42, Scale: 0.05, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry(0)
	ob := obs.New(nil, reg)
	srv, err := server.Start(cat, server.Config{
		Runners:     1,
		MaxSessions: 64,
		MaxInflight: 8,
		Autoscale:   autoscale,
		Obs:         ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p, err := ParseProfile([]byte(e2eProfile))
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	rep, err := Run(context.Background(), RunConfig{
		Profile: p,
		Addr:    srv.Addr(),
		Control: &Control{
			Checkpoint:   srv.Checkpoint,
			SetExecDelay: srv.SetExecDelay,
			Registry:     reg,
		},
		Live: NewLive(p.Name),
		Log:  &log,
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, log.String())
	}
	if testing.Verbose() {
		os.Stderr.WriteString(log.String())
	}
	if !strings.Contains(log.String(), "event slowdown") || !strings.Contains(log.String(), "event maintenance") {
		t.Errorf("events did not fire:\n%s", log.String())
	}
	return rep
}

// TestRunFixedPoolFailsRushSLO: one runner at 25ms/query caps at ~40
// qps; the 60 qps rush must blow the p99 SLO, and the timeline must
// show the phase boundary in offered QPS.
func TestRunFixedPoolFailsRushSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("12s wall-clock replay")
	}
	rep := e2eRun(t, nil)
	if rep.Offered < 200 {
		t.Fatalf("offered only %d queries — plan did not replay", rep.Offered)
	}
	if rep.Pass {
		t.Error("undersized fixed pool passed the rush SLO")
	}
	var calm, rush *PhaseSummary
	for i := range rep.Phases {
		switch rep.Phases[i].Phase {
		case "calm":
			calm = &rep.Phases[i]
		case "rush":
			rush = &rep.Phases[i]
		}
	}
	if calm == nil || rush == nil {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	if !calm.Pass {
		t.Errorf("calm phase failed its lenient SLO: %+v", calm)
	}
	if rush.Pass {
		t.Errorf("rush phase passed on one runner: %+v", rush)
	}
	// Phase boundary visible in offered QPS: rush intervals offer
	// several times calm's rate.
	var calmQPS, rushQPS float64
	var calmN, rushN int
	for i := range rep.Rows {
		switch rep.Rows[i].Phase {
		case "calm":
			calmQPS += rep.Rows[i].OfferedQPS
			calmN++
		case "rush":
			rushQPS += rep.Rows[i].OfferedQPS
			rushN++
		}
	}
	if calmN == 0 || rushN == 0 {
		t.Fatal("timeline missing a phase")
	}
	if rushQPS/float64(rushN) < 2*calmQPS/float64(calmN) {
		t.Errorf("phase boundary invisible: calm %.1f qps vs rush %.1f qps",
			calmQPS/float64(calmN), rushQPS/float64(rushN))
	}
}

// TestRunAutoscalerMeetsRushSLO: the same profile passes once the
// runner pool may grow to 8 (capacity ~320 qps against the 60 qps
// rush).
func TestRunAutoscalerMeetsRushSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("12s wall-clock replay")
	}
	rep := e2eRun(t, &sched.AutoscaleConfig{
		Min:      1,
		Max:      8,
		Interval: 100 * time.Millisecond,
		Hold:     2,
		Cooldown: 200 * time.Millisecond,
	})
	if !rep.Pass {
		t.Errorf("autoscaled run failed: %+v", rep.Phases)
	}
	// The pool must actually have grown: some rush row shows >1 runner.
	grew := false
	for i := range rep.Rows {
		if rep.Rows[i].Runners > 1 {
			grew = true
			break
		}
	}
	if !grew {
		t.Error("runner gauge never exceeded 1 — autoscaler idle")
	}
}

// TestRunDeterministicOffered: two runs of the same profile offer the
// identical schedule (completion timing varies; the offered side is a
// pure function of the seed).
func TestRunDeterministicOffered(t *testing.T) {
	p, err := ParseProfile([]byte(e2eProfile))
	if err != nil {
		t.Fatal(err)
	}
	a := buildPlan(p, p.TimeScale, rand.New(rand.NewSource(p.Seed)))
	b := buildPlan(p, p.TimeScale, rand.New(rand.NewSource(p.Seed)))
	if len(a) != len(b) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d", i)
		}
	}
}

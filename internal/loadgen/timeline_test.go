package loadgen

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSLOEvaluate(t *testing.T) {
	slo := &SLO{P99: 50 * time.Millisecond, ShedRate: 0.01, ErrorRate: -1}
	row := Row{Offered: 100, Completed: 90, Shed: 5, Dropped: 1,
		Latency: LaneQuantiles{P50: 2, P95: 20, P99: 80}, SLOOK: true}
	slo.evaluate(&row)
	if row.SLOOK || len(row.Violations) != 2 {
		t.Fatalf("row = ok=%v violations=%v, want p99 and shed_rate flagged", row.SLOOK, row.Violations)
	}
	if !strings.Contains(row.Violations[0], "p99") || !strings.Contains(row.Violations[1], "shed_rate") {
		t.Fatalf("violations = %v", row.Violations)
	}

	good := Row{Offered: 100, Completed: 100, Latency: LaneQuantiles{P99: 10}, SLOOK: true}
	slo.evaluate(&good)
	if !good.SLOOK {
		t.Fatalf("clean row flagged: %v", good.Violations)
	}
	// Errors are unchecked at -1 even when present.
	errRow := Row{Offered: 100, Errors: 50, Latency: LaneQuantiles{P99: 1}, SLOOK: true}
	slo.evaluate(&errRow)
	if !errRow.SLOOK {
		t.Fatalf("error_rate -1 must be unchecked: %v", errRow.Violations)
	}
}

// TestSummarizeGrace: the first Grace intervals of each phase are
// exempt, later violations fail only their own phase.
func TestSummarizeGrace(t *testing.T) {
	p := &Profile{Grace: 1, Phases: []Phase{{Name: "a"}, {Name: "b"}}}
	rows := []Row{
		{Phase: "a", SLOOK: false, Violations: []string{"p99"}}, // graced
		{Phase: "a", SLOOK: true},
		{Phase: "b", SLOOK: false, Violations: []string{"p99"}}, // graced (new phase)
		{Phase: "b", SLOOK: false, Violations: []string{"p99"}},
	}
	phases, pass := summarize(p, rows)
	if pass {
		t.Fatal("run passed with a post-grace violation")
	}
	if len(phases) != 2 || !phases[0].Pass || phases[1].Pass {
		t.Fatalf("phases = %+v", phases)
	}
	if phases[0].Graced != 1 || phases[1].Graced != 1 || phases[1].Violated != 1 {
		t.Fatalf("grace accounting = %+v", phases)
	}
	if !rows[0].SLOOK || rows[0].Violations != nil {
		t.Fatal("graced row not cleared for artifacts")
	}
}

func TestWriteCSVShape(t *testing.T) {
	rows := []Row{{
		Interval: 0, SimStartS: 0, SimEndS: 1800, Phase: "night",
		Offered: 120, Completed: 118, Shed: 2,
		OfferedQPS: 4.8, CompletedQPS: 4.7,
		Latency: LaneQuantiles{P50: 1.5, P95: 9.25, P99: 20.125},
		Lanes: map[string]LaneQuantiles{
			"high": {P99: 5}, "normal": {P99: 21}, "low": {P99: 80},
		},
		QueueDepth: 3, Runners: 4, Utilization: 0.75, SLOOK: true,
	}}
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv = %q", sb.String())
	}
	headerCols := strings.Split(lines[0], ",")
	dataCols := strings.Split(lines[1], ",")
	if len(headerCols) != len(dataCols) {
		t.Fatalf("header has %d cols, row has %d", len(headerCols), len(dataCols))
	}
	if !strings.HasPrefix(lines[1], "0,0.0,night,120,118,2,0,0,4.80,4.70,1.500,") {
		t.Fatalf("row = %q", lines[1])
	}
	if !strings.Contains(lines[0], "p99_low_ms") || !strings.Contains(lines[0], "slo_ok") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestLiveEndpoint(t *testing.T) {
	l := NewLive("demo")
	l.add(Row{Interval: 0, Phase: "night", Offered: 10, SLOOK: true})
	rec := httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest("GET", "/loadgen", nil))
	var doc struct {
		Profile string `json:"profile"`
		Status  string `json:"status"`
		Rows    []Row  `json:"rows"`
		Pass    *bool  `json:"pass"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad /loadgen document: %v", err)
	}
	if doc.Profile != "demo" || doc.Status != "running" || len(doc.Rows) != 1 || doc.Pass != nil {
		t.Fatalf("doc = %+v", doc)
	}

	l.finish(&Report{Pass: true, Phases: []PhaseSummary{{Phase: "night", Pass: true}}})
	rec = httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest("GET", "/loadgen", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "done" || doc.Pass == nil || !*doc.Pass {
		t.Fatalf("finished doc = %+v", doc)
	}
}

package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dfdbm/internal/obs"
)

// LaneQuantiles is one lane's latency quantiles over an interval, in
// milliseconds.
type LaneQuantiles struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
}

// Row is one timeline interval. Latencies are measured open-loop, from
// each query's scheduled arrival time to its completion, so client-side
// queueing when the server falls behind is charged to the row (no
// coordinated omission).
type Row struct {
	Interval  int     `json:"interval"`
	SimStartS float64 `json:"sim_start_s"`
	SimEndS   float64 `json:"sim_end_s"`
	Phase     string  `json:"phase"`

	Offered   int64 `json:"offered"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Dropped   int64 `json:"dropped"`
	Errors    int64 `json:"errors"`

	// QPS rates are per wall second of replay.
	OfferedQPS   float64 `json:"offered_qps"`
	CompletedQPS float64 `json:"completed_qps"`

	Latency LaneQuantiles            `json:"latency"` // all lanes combined
	Lanes   map[string]LaneQuantiles `json:"lanes"`

	QueueDepth  float64 `json:"queue_depth"`
	Runners     float64 `json:"runners"`
	Utilization float64 `json:"utilization"`

	SLOOK      bool     `json:"slo_ok"`
	Violations []string `json:"slo_violations,omitempty"`
}

// PhaseSummary is one phase's SLO verdict over the whole run.
type PhaseSummary struct {
	Phase       string  `json:"phase"`
	Intervals   int     `json:"intervals"`
	Graced      int     `json:"graced"`
	Violated    int     `json:"violated"`
	Pass        bool    `json:"pass"`
	WorstP99MS  float64 `json:"worst_p99_ms"`
	MaxShedRate float64 `json:"max_shed_rate"`
}

// Report is a finished run: the full timeline plus per-phase SLO
// verdicts.
type Report struct {
	Profile   string         `json:"profile"`
	TimeScale float64        `json:"time_scale"`
	Seed      int64          `json:"seed"`
	WallS     float64        `json:"wall_s"`
	Offered   int64          `json:"offered"`
	Completed int64          `json:"completed"`
	Shed      int64          `json:"shed"`
	Dropped   int64          `json:"dropped"`
	Errors    int64          `json:"errors"`
	Pass      bool           `json:"pass"`
	Phases    []PhaseSummary `json:"phases"`
	Rows      []Row          `json:"rows"`
}

// collector accumulates one interval's worth of results; the run loop
// flushes it into a Row at every timeline tick. Lane histograms are
// recreated per interval, so quantiles describe the interval alone.
type collector struct {
	mu      sync.Mutex
	lanes   map[string]*obs.Histogram
	all     *obs.Histogram
	offered int64
	done    int64
	shed    int64
	dropped int64
	errs    int64
}

func newCollector() *collector {
	c := &collector{}
	c.resetLocked()
	return c
}

func (c *collector) resetLocked() {
	c.lanes = map[string]*obs.Histogram{
		"high":   obs.NewHistogram(obs.DurationBuckets()),
		"normal": obs.NewHistogram(obs.DurationBuckets()),
		"low":    obs.NewHistogram(obs.DurationBuckets()),
	}
	c.all = obs.NewHistogram(obs.DurationBuckets())
	c.offered, c.done, c.shed, c.dropped, c.errs = 0, 0, 0, 0, 0
}

func (c *collector) offer() {
	c.mu.Lock()
	c.offered++
	c.mu.Unlock()
}

func (c *collector) drop() {
	c.mu.Lock()
	c.dropped++
	c.mu.Unlock()
}

// complete records one finished query: lat is measured from the
// scheduled arrival, outcome is "ok", "shed", or "error".
func (c *collector) complete(lane string, lat time.Duration, outcome string) {
	c.mu.Lock()
	switch outcome {
	case "shed":
		c.shed++
	case "error":
		c.errs++
	default:
		c.done++
		c.lanes[lane].ObserveDuration(lat)
		c.all.ObserveDuration(lat)
	}
	c.mu.Unlock()
}

func quantiles(h *obs.Histogram) LaneQuantiles {
	const ms = float64(time.Millisecond)
	return LaneQuantiles{
		P50: float64(h.Quantile(0.50)) / ms,
		P95: float64(h.Quantile(0.95)) / ms,
		P99: float64(h.Quantile(0.99)) / ms,
	}
}

// flush turns the current window into a Row and resets the collector.
// wallDur is the interval's wall length (for QPS rates); gauges come
// from the server registry when the run has one.
func (c *collector) flush(interval int, simStart, simEnd, wallDur time.Duration, phase string, reg *obs.Registry) Row {
	c.mu.Lock()
	row := Row{
		Interval:  interval,
		SimStartS: simStart.Seconds(),
		SimEndS:   simEnd.Seconds(),
		Phase:     phase,
		Offered:   c.offered,
		Completed: c.done,
		Shed:      c.shed,
		Dropped:   c.dropped,
		Errors:    c.errs,
		Latency:   quantiles(c.all),
		Lanes: map[string]LaneQuantiles{
			"high":   quantiles(c.lanes["high"]),
			"normal": quantiles(c.lanes["normal"]),
			"low":    quantiles(c.lanes["low"]),
		},
		SLOOK: true,
	}
	c.resetLocked()
	c.mu.Unlock()
	if s := wallDur.Seconds(); s > 0 {
		row.OfferedQPS = float64(row.Offered) / s
		row.CompletedQPS = float64(row.Completed) / s
	}
	if reg != nil {
		row.QueueDepth, _ = reg.Gauge("sched.queue_depth")
		row.Runners, _ = reg.Gauge("sched.runners")
		row.Utilization, _ = reg.Gauge("sched.runner_utilization")
	}
	return row
}

// evaluate applies a phase SLO to a row in place.
func (s *SLO) evaluate(row *Row) {
	if s == nil {
		return
	}
	check := func(name string, gotMS float64, bound time.Duration) {
		if bound > 0 && gotMS > float64(bound)/float64(time.Millisecond) {
			row.Violations = append(row.Violations,
				fmt.Sprintf("%s %.1fms > %v", name, gotMS, bound))
		}
	}
	check("p50", row.Latency.P50, s.P50)
	check("p95", row.Latency.P95, s.P95)
	check("p99", row.Latency.P99, s.P99)
	if row.Offered > 0 {
		if rate := float64(row.Shed+row.Dropped) / float64(row.Offered); s.ShedRate >= 0 && rate > s.ShedRate {
			row.Violations = append(row.Violations,
				fmt.Sprintf("shed_rate %.3f > %.3f", rate, s.ShedRate))
		}
		if rate := float64(row.Errors) / float64(row.Offered); s.ErrorRate >= 0 && rate > s.ErrorRate {
			row.Violations = append(row.Violations,
				fmt.Sprintf("error_rate %.3f > %.3f", rate, s.ErrorRate))
		}
	}
	row.SLOOK = len(row.Violations) == 0
}

// summarize folds the timeline into per-phase verdicts. The first
// `grace` intervals of each phase are recorded but not judged.
func summarize(p *Profile, rows []Row) ([]PhaseSummary, bool) {
	byPhase := map[string]*PhaseSummary{}
	var order []string
	prevPhase := ""
	sincePhaseStart := 0
	for i := range rows {
		row := &rows[i]
		if row.Phase != prevPhase {
			prevPhase = row.Phase
			sincePhaseStart = 0
		}
		ps := byPhase[row.Phase]
		if ps == nil {
			ps = &PhaseSummary{Phase: row.Phase, Pass: true}
			byPhase[row.Phase] = ps
			order = append(order, row.Phase)
		}
		ps.Intervals++
		if row.Latency.P99 > ps.WorstP99MS {
			ps.WorstP99MS = row.Latency.P99
		}
		if row.Offered > 0 {
			if rate := float64(row.Shed+row.Dropped) / float64(row.Offered); rate > ps.MaxShedRate {
				ps.MaxShedRate = rate
			}
		}
		if sincePhaseStart < p.Grace {
			// Reaction time for control loops: recorded, not judged.
			row.SLOOK = true
			row.Violations = nil
			ps.Graced++
		} else if !row.SLOOK {
			ps.Violated++
			ps.Pass = false
		}
		sincePhaseStart++
	}
	pass := true
	out := make([]PhaseSummary, 0, len(order))
	for _, name := range order {
		out = append(out, *byPhase[name])
		pass = pass && byPhase[name].Pass
	}
	return out, pass
}

// csvHeader is the timeline CSV column set; JSON rows carry the full
// per-lane quantiles, CSV the combined ones plus per-lane p99.
const csvHeader = "interval,sim_start_s,phase,offered,completed,shed,dropped,errors," +
	"offered_qps,completed_qps,p50_ms,p95_ms,p99_ms," +
	"p99_high_ms,p99_normal_ms,p99_low_ms,queue_depth,runners,utilization,slo_ok\n"

// WriteCSV writes the timeline in CSV form.
func WriteCSV(w io.Writer, rows []Row) error {
	if _, err := io.WriteString(w, csvHeader); err != nil {
		return err
	}
	for i := range rows {
		r := &rows[i]
		ok := 1
		if !r.SLOOK {
			ok = 0
		}
		_, err := fmt.Fprintf(w, "%d,%.1f,%s,%d,%d,%d,%d,%d,%.2f,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.1f,%.0f,%.3f,%d\n",
			r.Interval, r.SimStartS, r.Phase, r.Offered, r.Completed, r.Shed, r.Dropped, r.Errors,
			r.OfferedQPS, r.CompletedQPS, r.Latency.P50, r.Latency.P95, r.Latency.P99,
			r.Lanes["high"].P99, r.Lanes["normal"].P99, r.Lanes["low"].P99,
			r.QueueDepth, r.Runners, r.Utilization, ok)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the full report as indented JSON.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Live serves the timeline-so-far as JSON while a run is in progress —
// registered on the obs introspection server at /loadgen.
type Live struct {
	mu      sync.Mutex
	profile string
	status  string
	rows    []Row
	report  *Report
}

// NewLive returns a live view for the named profile.
func NewLive(profile string) *Live {
	return &Live{profile: profile, status: "running"}
}

func (l *Live) add(r Row) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.rows = append(l.rows, r)
	l.mu.Unlock()
}

func (l *Live) finish(rep *Report) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.status = "done"
	l.report = rep
	l.mu.Unlock()
}

// ServeHTTP implements the /loadgen endpoint: profile, run status, the
// rows so far, and — once finished — the per-phase SLO summary.
func (l *Live) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	l.mu.Lock()
	doc := struct {
		Profile string         `json:"profile"`
		Status  string         `json:"status"`
		Rows    []Row          `json:"rows"`
		Phases  []PhaseSummary `json:"phases,omitempty"`
		Pass    *bool          `json:"pass,omitempty"`
	}{Profile: l.profile, Status: l.status, Rows: append([]Row(nil), l.rows...)}
	if l.report != nil {
		doc.Phases = l.report.Phases
		doc.Pass = &l.report.Pass
	}
	l.mu.Unlock()
	json.NewEncoder(w).Encode(doc) //nolint:errcheck // client went away
}

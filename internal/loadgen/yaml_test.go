package loadgen

import (
	"strings"
	"testing"
)

func TestParseYAMLProfileShape(t *testing.T) {
	src := `
# a comment
name: demo
seed: 7
interval: 30m          # trailing comment
phases:
  - name: night
    duration: 6h
    qps: 4.5
    mix: {point: 0.7, join: 0.25, heavy: 0.05}
    slo:
      p99: 80ms
      shed_rate: 0.01
  - name: burst
    duration: 2h
    pattern: burst
events:
  - at: 3h
    kind: maintenance
tags: [a, 'b c', "d#e"]
`
	v, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["name"] != "demo" || m["seed"] != "7" || m["interval"] != "30m" {
		t.Fatalf("scalars = %v %v %v", m["name"], m["seed"], m["interval"])
	}
	phases := m["phases"].([]any)
	if len(phases) != 2 {
		t.Fatalf("phases = %d items", len(phases))
	}
	night := phases[0].(map[string]any)
	if night["name"] != "night" || night["qps"] != "4.5" {
		t.Fatalf("night = %v", night)
	}
	mix := night["mix"].(map[string]any)
	if mix["join"] != "0.25" {
		t.Fatalf("flow map mix = %v", mix)
	}
	slo := night["slo"].(map[string]any)
	if slo["p99"] != "80ms" || slo["shed_rate"] != "0.01" {
		t.Fatalf("nested slo = %v", slo)
	}
	if phases[1].(map[string]any)["pattern"] != "burst" {
		t.Fatalf("second item = %v", phases[1])
	}
	events := m["events"].([]any)
	if events[0].(map[string]any)["kind"] != "maintenance" {
		t.Fatalf("events = %v", events)
	}
	tags := m["tags"].([]any)
	if len(tags) != 3 || tags[1] != "b c" || tags[2] != "d#e" {
		t.Fatalf("flow list with quotes = %v", tags)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	for _, tc := range []struct{ name, src, wantSub string }{
		{"tab indent", "a:\n\tb: 1", "tab"},
		{"bad line", "a:\n  !!!", "key: value"},
		{"dup key", "a: 1\na: 2", "duplicate"},
		{"stray indent", "a: 1\n   b: 2", "indentation"},
		{"unterminated flow", "a: {x: 1", "unterminated"},
	} {
		_, err := parseYAML([]byte(tc.src))
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}

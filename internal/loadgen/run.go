// Package loadgen replays declarative load profiles against a dfdbm
// server over the real wire protocol. A profile describes a simulated
// day — phases with arrival patterns, query mixes, and SLOs, plus
// scheduled disturbances — and the generator compresses it by a time
// scale, drives it open-loop (arrivals never wait for completions, so
// latency includes every queueing effect), and emits a per-interval
// timeline of offered vs completed QPS, per-lane latency quantiles,
// shed counts, and scheduler gauges, judged against the profile's SLOs.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"dfdbm/internal/obs"
	"dfdbm/internal/server"
	"dfdbm/internal/wire"
)

// Control exposes in-process hooks on the serving stack. All fields
// are optional: driving a remote server over the wire leaves them nil,
// and the affected events/gauges are skipped with a log note.
type Control struct {
	// Checkpoint runs a catalog checkpoint under total write exclusion —
	// the maintenance-window event.
	Checkpoint func(context.Context) error
	// SetExecDelay injects per-query execution delay — the node
	// slowdown event.
	SetExecDelay func(time.Duration)
	// Registry supplies scheduler gauges (queue depth, runners,
	// utilization) for timeline rows.
	Registry *obs.Registry
}

// RunConfig parameterizes one replay.
type RunConfig struct {
	Profile *Profile
	// TimeScale overrides the profile's when positive.
	TimeScale float64
	// Addr is the server's wire address.
	Addr string
	// Engine requests an execution engine per session ("" = server
	// default).
	Engine string
	// Control hooks into an in-process server (optional).
	Control *Control
	// Live, when non-nil, receives every row for the /loadgen endpoint.
	Live *Live
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

// Run replays the profile and returns the timeline report. SLO failure
// is reported in Report.Pass, not as an error; errors mean the run
// itself could not proceed.
func Run(ctx context.Context, cfg RunConfig) (*Report, error) {
	p := cfg.Profile
	// Event goroutines, the interval flusher, and the dispatcher all
	// log; serialize writes so callers can pass any io.Writer.
	if cfg.Log != nil {
		cfg.Log = &syncWriter{w: cfg.Log}
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = p.TimeScale
	}
	rng := rand.New(rand.NewSource(p.Seed))
	plan := buildPlan(p, scale, rng)
	totalWall := time.Duration(float64(p.TotalDuration()) / scale)
	wallInterval := time.Duration(float64(p.Interval) / scale)
	if wallInterval <= 0 {
		return nil, fmt.Errorf("loadgen: interval %v collapses to zero at scale %g", p.Interval, scale)
	}
	logf(cfg.Log, "profile %s: %d arrivals over %v wall (%v simulated, scale %g)",
		p.Name, len(plan), totalWall.Round(time.Millisecond), p.TotalDuration(), scale)

	// Session pool: one wire connection per session, sized to the
	// widest phase; each phase round-robins over its own session count.
	poolSize := 0
	for i := range p.Phases {
		if p.Phases[i].Sessions > poolSize {
			poolSize = p.Phases[i].Sessions
		}
	}
	workers := make([]chan arrival, poolSize)
	clients := make([]*server.Client, poolSize)
	for i := range clients {
		c, err := server.Dial(cfg.Addr, server.ClientConfig{
			Engine: cfg.Engine,
			Name:   fmt.Sprintf("loadgen-%d", i),
		})
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("loadgen: session %d: %w", i, err)
		}
		clients[i] = c
		workers[i] = make(chan arrival, 8)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	col := newCollector()
	start := time.Now()
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runSession(ctx, clients[i], workers[i], start, col)
		}(i)
	}

	var reg *obs.Registry
	if cfg.Control != nil {
		reg = cfg.Control.Registry
	}

	// Timeline flusher: one row per interval, judged against the
	// covering phase's SLO immediately so the live endpoint shows
	// verdicts as they land.
	var rows []Row
	rowsDone := make(chan struct{})
	flushRow := func(idx int, wallDur time.Duration) {
		simStart := time.Duration(idx) * p.Interval
		simEnd := simStart + p.Interval
		if tot := p.TotalDuration(); simEnd > tot {
			simEnd = tot
		}
		_, ph, _ := p.PhaseAt(simStart + (simEnd-simStart)/2)
		row := col.flush(idx, simStart, simEnd, wallDur, ph.Name, reg)
		ph.SLO.evaluate(&row)
		rows = append(rows, row)
		cfg.Live.add(row)
		logf(cfg.Log, "interval %d [%s] offered %.1f qps, completed %.1f qps, p99 %.1fms, shed %d, depth %.0f, runners %.0f, slo_ok=%v",
			idx, row.Phase, row.OfferedQPS, row.CompletedQPS, row.Latency.P99, row.Shed, row.QueueDepth, row.Runners, row.SLOOK)
	}
	go func() {
		defer close(rowsDone)
		idx := 0
		for {
			next := start.Add(time.Duration(idx+1) * wallInterval)
			if next.After(start.Add(totalWall)) {
				return // final partial interval flushes after drain
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Until(next)):
				flushRow(idx, wallInterval)
				idx++
			}
		}
	}()

	events := startEvents(ctx, cfg, p, scale, start)

	// Dispatch the plan open-loop: each arrival goes to its phase's
	// session ring at its scheduled instant; a full session backlog
	// drops the arrival (counted, not blocked on — the whole point of
	// open-loop replay).
	var rr int
	dispatchErr := func() error {
		for i := range plan {
			a := &plan[i]
			if err := sleepUntil(ctx, start.Add(a.wall)); err != nil {
				return err
			}
			col.offer()
			active := p.Phases[a.phase].Sessions
			if active > poolSize {
				active = poolSize
			}
			sent := false
			for try := 0; try < active; try++ {
				w := workers[rr%active]
				rr++
				select {
				case w <- *a:
					sent = true
				default:
					continue
				}
				break
			}
			if !sent {
				col.drop()
			}
		}
		return nil
	}()

	for _, w := range workers {
		close(w)
	}
	wg.Wait()
	events.Wait()
	<-rowsDone

	// Flush whatever the last partial interval holds.
	elapsed := time.Since(start)
	lastIdx := len(rows)
	if rem := elapsed - time.Duration(lastIdx)*wallInterval; rem > 0 || lastIdx == 0 {
		flushRow(lastIdx, maxDur(rem, time.Millisecond))
	}

	phases, pass := summarize(p, rows)
	rep := &Report{
		Profile:   p.Name,
		TimeScale: scale,
		Seed:      p.Seed,
		WallS:     time.Since(start).Seconds(),
		Pass:      pass,
		Phases:    phases,
		Rows:      rows,
	}
	for i := range rows {
		rep.Offered += rows[i].Offered
		rep.Completed += rows[i].Completed
		rep.Shed += rows[i].Shed
		rep.Dropped += rows[i].Dropped
		rep.Errors += rows[i].Errors
	}
	cfg.Live.finish(rep)
	logf(cfg.Log, "run done: offered %d, completed %d, shed %d, dropped %d, errors %d, pass=%v",
		rep.Offered, rep.Completed, rep.Shed, rep.Dropped, rep.Errors, rep.Pass)
	if dispatchErr != nil && !errors.Is(dispatchErr, context.Canceled) {
		return rep, dispatchErr
	}
	return rep, ctx.Err()
}

// runSession executes one session's arrivals in order. Latency is
// measured from the scheduled arrival instant, so time spent waiting
// behind the session's earlier queries counts against the server.
func runSession(ctx context.Context, c *server.Client, in <-chan arrival, start time.Time, col *collector) {
	for a := range in {
		scheduled := start.Add(a.wall)
		_, err := c.QueryPriority(ctx, a.text, a.lane)
		lat := time.Since(scheduled)
		outcome := "ok"
		if err != nil {
			var re *server.RemoteError
			if errors.As(err, &re) && re.Code == wire.CodeOverloaded {
				outcome = "shed"
			} else {
				outcome = "error"
			}
		}
		col.complete(laneName(a.lane), lat, outcome)
	}
}

// startEvents schedules the profile's disturbances on the compressed
// clock and returns a WaitGroup that settles when all have fired.
func startEvents(ctx context.Context, cfg RunConfig, p *Profile, scale float64, start time.Time) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := range p.Events {
		ev := p.Events[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sleepUntil(ctx, start.Add(time.Duration(float64(ev.At)/scale))); err != nil {
				return
			}
			fireEvent(ctx, cfg, ev, scale)
		}()
	}
	return &wg
}

func fireEvent(ctx context.Context, cfg RunConfig, ev EventSpec, scale float64) {
	ctl := cfg.Control
	switch ev.Kind {
	case "maintenance":
		if ctl == nil || ctl.Checkpoint == nil {
			logf(cfg.Log, "event maintenance at %v: skipped (no in-process control)", ev.At)
			return
		}
		logf(cfg.Log, "event maintenance at %v: checkpoint (total write exclusion)", ev.At)
		if err := ctl.Checkpoint(ctx); err != nil {
			logf(cfg.Log, "event maintenance: checkpoint failed: %v", err)
		}
	case "slowdown":
		if ctl == nil || ctl.SetExecDelay == nil {
			logf(cfg.Log, "event slowdown at %v: skipped (no in-process control)", ev.At)
			return
		}
		wallDur := time.Duration(float64(ev.Duration) / scale)
		logf(cfg.Log, "event slowdown at %v: +%v per execution for %v wall", ev.At, ev.Delay, wallDur.Round(time.Millisecond))
		ctl.SetExecDelay(ev.Delay)
		if sleepCtx(ctx, wallDur) == nil {
			ctl.SetExecDelay(0)
			logf(cfg.Log, "event slowdown: cleared")
		} else {
			ctl.SetExecDelay(0)
		}
	case "bulk_append":
		c, err := server.Dial(cfg.Addr, server.ClientConfig{Engine: cfg.Engine, Name: "loadgen-bulk"})
		if err != nil {
			logf(cfg.Log, "event bulk_append at %v: dial: %v", ev.At, err)
			return
		}
		defer c.Close()
		logf(cfg.Log, "event bulk_append at %v: %d appends into %s", ev.At, ev.Count, ev.Relation)
		for i := 0; i < ev.Count; i++ {
			src := fmt.Sprintf("r%d", 5+i%5)
			q := fmt.Sprintf("append(%s, restrict(%s, val < 400))", ev.Relation, src)
			if _, err := c.QueryPriority(ctx, q, 2); err != nil {
				logf(cfg.Log, "event bulk_append: %v", err)
				if ctx.Err() != nil {
					return
				}
			}
		}
	}
}

func sleepUntil(ctx context.Context, t time.Time) error {
	return sleepCtx(ctx, time.Until(t))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, "loadgen: "+format+"\n", args...)
	}
}

type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

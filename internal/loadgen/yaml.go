package loadgen

import (
	"fmt"
	"strings"
)

// This file implements the YAML subset load profiles are written in.
// The repo carries no third-party dependencies, so rather than vendor a
// full YAML implementation we parse exactly what profiles need:
//
//   - block maps ("key: value", "key:" + indented block)
//   - block lists ("- item", "- key: value" + indented continuation)
//   - flow maps and lists ("{p50: 80ms, shed_rate: 0.01}", "[a, b]")
//   - quoted and plain scalars, "#" comments, blank lines
//
// Indentation is spaces only (tabs are an error, as in YAML proper).
// Scalars stay strings; the profile decoder interprets numbers and
// durations, so "80ms" and 0.01 need no type tags here.

type yamlLine struct {
	indent int
	text   string
	n      int // 1-based source line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses src into nested map[string]any / []any / string.
func parseYAML(src []byte) (any, error) {
	p := &yamlParser{}
	for i, raw := range strings.Split(string(src), "\n") {
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("yaml line %d: tab in indentation", i+1)
		}
		p.lines = append(p.lines, yamlLine{indent: indent, text: trimmed, n: i + 1})
	}
	if len(p.lines) == 0 {
		return map[string]any{}, nil
	}
	v, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected indentation", p.lines[p.pos].n)
	}
	return v, nil
}

// stripComment removes a trailing "# ..." comment, respecting quotes.
func stripComment(line string) string {
	inS, inD := false, false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD {
				return line[:i]
			}
		}
	}
	return line
}

func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("yaml: unexpected end of input")
	}
	if isListItem(p.lines[p.pos].text) {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func isListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yamlParser) parseMap(indent int) (map[string]any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		if line.indent != indent || isListItem(line.text) {
			break
		}
		key, rest, err := splitKey(line)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", line.n, key)
		}
		p.pos++
		if rest != "" {
			m[key], err = parseScalar(rest, line.n)
			if err != nil {
				return nil, err
			}
			continue
		}
		// "key:" introduces a nested block (or an empty value at end of
		// input / before a shallower line).
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
		return nil, fmt.Errorf("yaml line %d: unexpected indentation", p.lines[p.pos].n)
	}
	return m, nil
}

func (p *yamlParser) parseList(indent int) ([]any, error) {
	l := []any{}
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		if line.indent != indent || !isListItem(line.text) {
			break
		}
		content := strings.TrimSpace(strings.TrimPrefix(line.text, "-"))
		if content == "" {
			// "-" alone: the item is the nested block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("yaml line %d: empty list item", line.n)
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			l = append(l, v)
			continue
		}
		if k := keyOf(content); k != "" {
			// "- key: value": a map item whose first entry rides the
			// dash line; continuation entries are the deeper-indented
			// lines that follow. Rewrite the dash line as its content at
			// that deeper indent and let parseMap consume everything.
			itemIndent := indent + 2
			if p.pos+1 < len(p.lines) && p.lines[p.pos+1].indent > indent && !isListItem(p.lines[p.pos+1].text) {
				itemIndent = p.lines[p.pos+1].indent
			}
			p.lines[p.pos] = yamlLine{indent: itemIndent, text: content, n: line.n}
			v, err := p.parseMap(itemIndent)
			if err != nil {
				return nil, err
			}
			l = append(l, v)
			continue
		}
		p.pos++
		v, err := parseScalar(content, line.n)
		if err != nil {
			return nil, err
		}
		l = append(l, v)
	}
	return l, nil
}

// keyOf returns the map key when text looks like "key:" or
// "key: value" with a plain identifier key, else "".
func keyOf(text string) string {
	i := strings.IndexByte(text, ':')
	if i <= 0 || (i+1 < len(text) && text[i+1] != ' ') {
		return ""
	}
	key := strings.TrimSpace(text[:i])
	for _, c := range key {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-') {
			return ""
		}
	}
	return key
}

func splitKey(line yamlLine) (key, rest string, err error) {
	key = keyOf(line.text)
	if key == "" {
		return "", "", fmt.Errorf("yaml line %d: expected \"key: value\", got %q", line.n, line.text)
	}
	i := strings.IndexByte(line.text, ':')
	return key, strings.TrimSpace(line.text[i+1:]), nil
}

func parseScalar(s string, lineNo int) (any, error) {
	switch {
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow map %q", lineNo, s)
		}
		m := map[string]any{}
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			k := keyOf(part)
			if k == "" {
				return nil, fmt.Errorf("yaml line %d: bad flow map entry %q", lineNo, part)
			}
			v, err := parseScalar(strings.TrimSpace(part[strings.IndexByte(part, ':')+1:]), lineNo)
			if err != nil {
				return nil, err
			}
			m[k] = v
		}
		return m, nil
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow list %q", lineNo, s)
		}
		l := []any{}
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			v, err := parseScalar(part, lineNo)
			if err != nil {
				return nil, err
			}
			l = append(l, v)
		}
		return l, nil
	case len(s) >= 2 && (s[0] == '"' && s[len(s)-1] == '"' || s[0] == '\'' && s[len(s)-1] == '\''):
		return s[1 : len(s)-1], nil
	default:
		return s, nil
	}
}

// splitFlow splits "a: 1, b: 2" on commas (no nesting inside flow
// collections — the profile subset never needs it).
func splitFlow(s string) []string {
	var parts []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

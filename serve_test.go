package dfdbm_test

import (
	"context"
	"errors"
	"testing"

	"dfdbm"
)

// TestServeDialRoundTrip exercises the public façade: Serve a paper
// database, Dial it, and check a remote query against the serial
// reference.
func TestServeDialRoundTrip(t *testing.T) {
	db, qs, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{Seed: 42, Scale: 0.05, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dfdbm.Serve(db, dfdbm.ServeConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := dfdbm.Dial(srv.Addr(), dfdbm.ClientConfig{Name: "facade-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query(context.Background(), `restrict(r1, val < 100)`)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := db.ExecuteSerial(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.EqualMultiset(ref) {
		t.Fatal("served result differs from serial reference")
	}

	// Remote failures surface as *RemoteError with the wire code.
	_, err = c.Query(context.Background(), `restrict(nosuch, val < 1)`)
	var re *dfdbm.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("bad query returned %v, want *dfdbm.RemoteError", err)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

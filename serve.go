package dfdbm

import (
	"dfdbm/internal/server"
)

// Network query service: a dfdbm database served over TCP, with a
// per-session choice of execution engine and a multi-query admission
// scheduler that generalizes the paper's Section 4 master-controller
// concurrency rules — queries with non-conflicting read/write sets run
// concurrently, conflicting ones queue, and overload is shed rather
// than buffered.
type (
	// QueryServer is a running network query service (Serve).
	QueryServer = server.Server
	// ServeConfig parameterizes Serve: listen address, default engine,
	// session and admission limits, and observability.
	ServeConfig = server.Config
	// Client is one client session against a QueryServer (Dial).
	Client = server.Client
	// ClientConfig parameterizes Dial.
	ClientConfig = server.ClientConfig
	// QueryResult is one answered remote query: the reassembled
	// relation plus the server's stats frame.
	QueryResult = server.QueryResult
	// RemoteError is a server-reported failure, carrying the wire
	// error code ("overloaded", "draining", "parse", "exec", "fault",
	// ...).
	RemoteError = server.RemoteError
)

// Engine names for ServeConfig.Engine and ClientConfig.Engine.
const (
	ServeEngineCore    = server.EngineCore
	ServeEngineMachine = server.EngineMachine
)

// Serve starts a network query service over the database. The server
// owns a listener on cfg.Addr and serves sessions until Shutdown
// (graceful drain) or Close.
func Serve(db *DB, cfg ServeConfig) (*QueryServer, error) {
	return server.Start(db.cat, cfg)
}

// Dial opens a client session against a Serve-d database.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	return server.Dial(addr, cfg)
}

// Ringmachine: a multi-user query stream on the Section 4 ring-based
// data-flow database machine. Five users submit queries — including a
// writer that conflicts with a reader — and the master controller
// admits, schedules, and serializes them. The example prints the
// per-query timeline and the machine's traffic and utilization report.
package main

import (
	"fmt"
	"log"

	"dfdbm"
)

func main() {
	db, queries, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed:     7,
		Scale:    0.1,
		PageSize: 2048,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2 KB operand pages keep the reduced-scale operands multi-page.
	hw := dfdbm.DefaultHW()
	hw.PageSize = 2048

	m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{
		HW:                hw,
		ICs:               16,
		IPs:               16,
		IPsPerInstruction: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Users 0-3 run read-only benchmark queries; user 4 appends into an
	// archive relation built from r14 — and user 5 then reads the
	// archive, so the MC must serialize 4 before 5.
	archive := dfdbm.MustNewRelation("archive", dfdbm.MustSchema(
		dfdbm.Attr{Name: "id", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "k1", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "k2", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "k3", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "k4", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "val", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "pad", Type: dfdbm.String, Width: 76},
	), 2048)
	db.Put(archive)

	texts := []string{
		"", "", "", "", // placeholders; users 0-3 use benchmark queries
		`append(archive, restrict(r14, val < 300))`,
		`restrict(archive, val < 100)`,
	}
	for u := 0; u < 4; u++ {
		if err := m.Submit(queries[u]); err != nil {
			log.Fatal(err)
		}
	}
	for u := 4; u < 6; u++ {
		q, err := db.Parse(texts[u])
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Submit(q); err != nil {
			log.Fatal(err)
		}
	}

	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-query timeline (virtual time):")
	fmt.Printf("  %-6s %-12s %-12s %-12s %8s\n", "user", "started", "finished", "latency", "tuples")
	for _, qr := range res.PerQuery {
		fmt.Printf("  %-6d %-12v %-12v %-12v %8d\n",
			qr.QueryID, qr.Started, qr.Finished, qr.Finished-qr.Started,
			qr.Relation.Cardinality())
	}

	s := res.Stats
	fmt.Println("\nmachine report:")
	fmt.Printf("  makespan                 : %v\n", res.Elapsed)
	fmt.Printf("  outer ring               : %d packets, %d bytes, %.2f Mbps average, %.1f%% utilized\n",
		s.OuterRingPackets, s.OuterRingBytes, res.OuterRingMbps(), 100*res.OuterRingUtilization)
	fmt.Printf("  inner ring               : %d packets, %d bytes\n", s.InnerRingPackets, s.InnerRingBytes)
	fmt.Printf("  instruction packets      : %d\n", s.InstructionPackets)
	fmt.Printf("  result packets           : %d\n", s.ResultPackets)
	fmt.Printf("  broadcasts (join)        : %d sent, %d ignored, %d recoveries\n",
		s.Broadcasts, s.BroadcastsIgnored, s.RecoveryRequests)
	fmt.Printf("  storage hierarchy        : %d disk reads, %d disk writes, %d cache moves\n",
		s.DiskReads, s.DiskWrites, s.CacheReads+s.CacheWrites)
	fmt.Printf("  IP pool utilization      : %.1f%%\n", 100*res.IPUtilization)
	fmt.Printf("  queries delayed by locks : %d (the archive reader waited for the writer)\n",
		s.QueriesDelayedByConflict)
}

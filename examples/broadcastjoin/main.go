// Broadcastjoin: a walkthrough of the Section 4.2 broadcast-join
// protocol. A join runs on the ring machine with deliberately small
// per-IP inner buffers so that processors drop broadcasts and exercise
// the missed-page recovery pass driven by their IRC vectors. The
// example sweeps the buffer size and shows the protocol adapting —
// with the answer verified against the serial executor every time.
package main

import (
	"fmt"
	"log"

	"dfdbm"
)

func main() {
	db, queries, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed:     11,
		Scale:    0.5,
		PageSize: 2048,
	})
	if err != nil {
		log.Fatal(err)
	}
	q := queries[2] // join of two restricted relations
	fmt.Println("query:", q)

	want, err := db.ExecuteSerial(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial reference: %d tuples\n\n", want.Cardinality())

	hw := dfdbm.DefaultHW()
	hw.PageSize = 2048

	fmt.Printf("%-14s %12s %10s %12s %12s %10s\n",
		"buffer pages", "broadcasts", "ignored", "recoveries", "elapsed", "correct")
	for _, buf := range []int{1, 2, 4, 8} {
		m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{
			HW:                hw,
			IPs:               6,
			IPsPerInstruction: 6,
			IPBufferPages:     buf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Submit(q); err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		fmt.Printf("%-14d %12d %10d %12d %12v %10v\n",
			buf, s.Broadcasts, s.BroadcastsIgnored, s.RecoveryRequests,
			res.Elapsed, res.PerQuery[0].Relation.EqualMultiset(want))
	}

	fmt.Println(`
How to read this: the IC broadcasts each requested inner page to every
processor working on the join. A processor that is busy when a page
arrives buffers it if it has room and otherwise ignores it; its
inner-relation-control (IRC) vector later shows the page missing, and
the processor re-requests it — the recovery pass. Smaller buffers mean
more ignored broadcasts and more recoveries, but never a wrong answer.`)
}

// Persistence: the database-at-rest workflow. Builds the paper's
// benchmark database, saves it to a file, reloads it, verifies queries
// compute identical answers, and round-trips a relation through CSV —
// the format bridge for loading real data into the machine.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"dfdbm"
)

func main() {
	dir, err := os.MkdirTemp("", "dfdbm-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build and save.
	db, queries, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed: 13, Scale: 0.1, PageSize: 2048,
	})
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "paper.dfdbm")
	if err := db.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved %d relations (%d bytes of pages) as %s (%d bytes on disk)\n",
		len(db.Names()), db.TotalBytes(), filepath.Base(path), info.Size())

	// Reload and re-run a query.
	loaded, err := dfdbm.OpenDB(path)
	if err != nil {
		log.Fatal(err)
	}
	q, err := loaded.Parse(queries[2].String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreloaded; explaining benchmark query 3:")
	fmt.Print(dfdbm.Explain(q))

	fresh, err := db.ExecuteSerial(queries[2])
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := loaded.ExecuteSerial(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanswer identical after reload: %v (%d tuples)\n",
		fresh.EqualMultiset(reloaded), reloaded.Cardinality())

	// CSV round trip.
	var csv strings.Builder
	if err := loaded.ExportCSV("r15", &csv); err != nil {
		log.Fatal(err)
	}
	r15, _ := loaded.Get("r15")
	back, err := loaded.ImportCSV("r15_copy", r15.Schema(), strings.NewReader(csv.String()), 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSV round trip of r15: %d tuples exported, %d imported, equal: %v\n",
		r15.Cardinality(), back.Cardinality(), back.EqualMultiset(r15))
}

// Granularity: the paper's Section 3 comparison on real executions.
// Runs one benchmark query at relation-, page-, and tuple-level
// granularity on the functional data-flow engine and prints the
// arbitration-network traffic of each — the measurement behind the
// conclusion that "relation-level granularity is too coarse and
// tuple-level granularity is too fine".
package main

import (
	"fmt"
	"log"

	"dfdbm"
)

func main() {
	// A 10% instance of the paper's database with the analysis page
	// size of Section 3.3 (1000-byte pages, 100-byte tuples).
	db, queries, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed:     42,
		Scale:    0.1,
		PageSize: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	q := queries[2] // 1 join, 2 restricts
	fmt.Println("query 3 of the benchmark:", q)
	fmt.Println()

	var pageBytes int64
	fmt.Printf("%-10s %12s %16s %14s %10s\n",
		"level", "packets", "arbitration B", "result pkts", "tuples")
	for _, g := range []dfdbm.Granularity{
		dfdbm.RelationLevel, dfdbm.PageLevel, dfdbm.TupleLevel,
	} {
		res, err := db.Execute(q, dfdbm.EngineOptions{
			Granularity: g,
			Workers:     4,
			PageSize:    1000,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		fmt.Printf("%-10s %12d %16d %14d %10d\n",
			g, s.InstructionPackets, s.ArbitrationBytes, s.ResultPackets, s.TuplesOut)
		if g == dfdbm.PageLevel {
			pageBytes = s.ArbitrationBytes
		}
		if g == dfdbm.TupleLevel && pageBytes > 0 {
			fmt.Printf("\ntuple-level pushes %.1fx the bytes of page-level through the arbitration\n",
				float64(s.ArbitrationBytes)/float64(pageBytes))
			fmt.Println("network — the Section 3.3 analysis predicts ~10x for a pure join with")
			fmt.Println("1000-byte pages (the restricts' streaming traffic dilutes the measured ratio).")
		}
	}

	// The closed-form analysis for comparison.
	fmt.Println("\nSection 3.3 closed form (n = m = 1000, c = 32):")
	for _, pageSize := range []int{1000, 10000} {
		tp := dfdbm.TrafficExample(1000, 1000, pageSize, 32)
		fmt.Printf("  %5d-byte pages: tuple %d B vs page %d B — ratio %.1f\n",
			pageSize, tp.TupleLevelBytes(), tp.PageLevelBytes(), tp.Ratio())
	}
}

// Quickstart: build a small database, run a restrict–join–project query
// on the data-flow engine at page-level granularity, and inspect the
// traffic statistics the paper's Section 3.3 analyzes.
package main

import (
	"fmt"
	"log"

	"dfdbm"
)

func main() {
	db := dfdbm.NewDB()

	// A parts relation and an orders relation.
	parts := dfdbm.MustNewRelation("parts", dfdbm.MustSchema(
		dfdbm.Attr{Name: "pid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "weight", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "pname", Type: dfdbm.String, Width: 16},
	), 4096)
	names := []string{"bolt", "nut", "washer", "gear", "axle", "cam", "rod", "pin"}
	for i := 0; i < 64; i++ {
		if err := parts.Insert(dfdbm.Tuple{
			dfdbm.IntVal(int64(i)),
			dfdbm.IntVal(int64((i*7)%100 + 1)),
			dfdbm.StringVal(names[i%len(names)]),
		}); err != nil {
			log.Fatal(err)
		}
	}
	db.Put(parts)

	orders := dfdbm.MustNewRelation("orders", dfdbm.MustSchema(
		dfdbm.Attr{Name: "oid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "pid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "qty", Type: dfdbm.Int32},
	), 4096)
	for i := 0; i < 500; i++ {
		if err := orders.Insert(dfdbm.Tuple{
			dfdbm.IntVal(int64(10000 + i)),
			dfdbm.IntVal(int64(i % 64)),
			dfdbm.IntVal(int64(i%17 + 1)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	db.Put(orders)

	// The query tree of the paper's Figure 2.1 shape: restricts feeding
	// a join, projected at the top.
	q, err := db.Parse(`
		project(
			join(restrict(orders, qty >= 15), restrict(parts, weight > 50), pid = pid),
			[oid, pname])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)

	res, err := db.Execute(q, dfdbm.EngineOptions{
		Granularity: dfdbm.PageLevel,
		Workers:     4,
		PageSize:    4096,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d result tuples (schema %s):\n", res.Relation.Cardinality(), res.Relation.Schema())
	shown := 0
	_ = res.Relation.Each(func(t dfdbm.Tuple) bool {
		fmt.Printf("  oid=%v  pname=%v\n", t[0], t[1])
		shown++
		return shown < 8
	})
	if res.Relation.Cardinality() > shown {
		fmt.Printf("  ... and %d more\n", res.Relation.Cardinality()-shown)
	}

	s := res.Stats
	fmt.Printf("\ndata-flow execution statistics (page-level granularity):\n")
	fmt.Printf("  instruction packets : %d\n", s.InstructionPackets)
	fmt.Printf("  arbitration bytes   : %d (operands %d + overhead)\n", s.ArbitrationBytes, s.OperandBytes)
	fmt.Printf("  result packets      : %d (%d bytes)\n", s.ResultPackets, s.ResultBytes)
	fmt.Printf("  pages moved         : %d\n", s.PagesMoved)
	fmt.Printf("  elapsed             : %v\n", s.Elapsed)

	// Sanity: the serial reference executor agrees.
	want, err := db.ExecuteSerial(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserial reference agrees: %v\n", res.Relation.EqualMultiset(want))
}

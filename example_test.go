package dfdbm_test

import (
	"bytes"
	"fmt"
	"time"

	"dfdbm"
)

// Example shows the minimal path: build a database, run one query on
// the data-flow engine, and read the answer.
func Example() {
	db := dfdbm.NewDB()
	parts := dfdbm.MustNewRelation("parts", dfdbm.MustSchema(
		dfdbm.Attr{Name: "pid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "weight", Type: dfdbm.Int32},
	), 4096)
	for i := 1; i <= 5; i++ {
		_ = parts.Insert(dfdbm.Tuple{dfdbm.IntVal(int64(i)), dfdbm.IntVal(int64(i * 10))})
	}
	db.Put(parts)

	q, _ := db.Parse(`restrict(parts, weight > 25)`)
	res, _ := db.Execute(q, dfdbm.EngineOptions{Granularity: dfdbm.PageLevel})
	fmt.Println(res.Relation.Cardinality(), "tuples")
	// Output: 3 tuples
}

// ExampleDB_Bind builds a query tree programmatically instead of
// parsing the textual language.
func ExampleDB_Bind() {
	db := dfdbm.NewDB()
	r := dfdbm.MustNewRelation("nums", dfdbm.MustSchema(
		dfdbm.Attr{Name: "n", Type: dfdbm.Int32},
	), 1024)
	for i := 0; i < 10; i++ {
		_ = r.Insert(dfdbm.Tuple{dfdbm.IntVal(int64(i))})
	}
	db.Put(r)

	root := dfdbm.RestrictNode(dfdbm.Scan("nums"),
		dfdbm.And(
			dfdbm.Compare{Attr: "n", Op: dfdbm.GE, Const: dfdbm.IntVal(3)},
			dfdbm.Compare{Attr: "n", Op: dfdbm.LT, Const: dfdbm.IntVal(7)},
		))
	q, _ := db.Bind(root)
	out, _ := db.ExecuteSerial(q)
	fmt.Println(out.Cardinality())
	// Output: 4
}

// ExampleTrafficParams reproduces the paper's Section 3.3 numbers.
func ExampleTrafficParams() {
	tp := dfdbm.TrafficExample(1000, 1000, 1000, 0)
	fmt.Printf("tuple-level/page-level traffic ratio: %.0fx\n", tp.Ratio())
	big := dfdbm.TrafficExample(1000, 1000, 10000, 0)
	fmt.Printf("with 10 KB pages: %.0fx\n", big.Ratio())
	// Output:
	// tuple-level/page-level traffic ratio: 10x
	// with 10 KB pages: 100x
}

// ExampleObserver wires the observability facade end to end: a JSONL
// trace sink plus a metrics registry feed one Observer; spans are
// enabled so the trace carries the causal tree; after the run the
// trace alone reconstructs the EXPLAIN ANALYZE profile.
func ExampleObserver() {
	db := dfdbm.NewDB()
	parts := dfdbm.MustNewRelation("parts", dfdbm.MustSchema(
		dfdbm.Attr{Name: "pid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "weight", Type: dfdbm.Int32},
	), 4096)
	for i := 1; i <= 64; i++ {
		_ = parts.Insert(dfdbm.Tuple{dfdbm.IntVal(int64(i)), dfdbm.IntVal(int64(i * 10))})
	}
	db.Put(parts)
	q, _ := db.Parse(`restrict(parts, weight > 100)`)

	var trace bytes.Buffer
	sink, _ := dfdbm.NewTraceSink("jsonl", &trace)      // or "text", "chrome"
	metrics := dfdbm.NewMetrics(100 * time.Millisecond) // timeline bucket width
	observer := dfdbm.NewObserver(sink, metrics)
	observer.EnableSpans()

	m, _ := dfdbm.NewMachine(db, dfdbm.MachineConfig{Obs: observer})
	_ = m.Submit(q)
	res, _ := m.Run()
	_ = observer.Close()

	// The JSONL stream is self-contained: rebuild the span tree and
	// fold it into the per-node EXPLAIN ANALYZE report.
	spans, _ := dfdbm.ReadSpans(&trace)
	profile := dfdbm.BuildProfile(spans, res.Elapsed)
	fmt.Printf("profiled %d query-tree node(s)\n", len(profile.Nodes))
	fmt.Printf("attribution exact: %v\n", profile.Attributed()+profile.Idle == res.Elapsed)
	fmt.Printf("disk reads metered: %v\n", metrics.Counter("machine.disk_reads") > 0)
	// Output:
	// profiled 1 query-tree node(s)
	// attribution exact: true
	// disk reads metered: true
}

// ExamplePaperBenchmark regenerates the paper's workload composition.
func ExamplePaperBenchmark() {
	db, queries, _ := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{Seed: 1, Scale: 1.0})
	fmt.Printf("%d relations, %d queries, %.1f MB\n",
		len(db.Names()), len(queries), float64(db.TotalBytes())/1e6)
	// Output: 15 relations, 10 queries, 5.5 MB
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per experiment (see DESIGN.md's experiment index).
// Simulated 1979 quantities (execution seconds, Mbps, traffic ratios)
// are attached to each benchmark as custom metrics, so `go test
// -bench=. -benchmem` reproduces the paper's numbers alongside the
// host-side cost of computing them.
package dfdbm_test

import (
	"sync"
	"testing"
	"time"

	"dfdbm"
)

const benchSeed = 5

// benchScale keeps full benchmark sweeps affordable on a laptop while
// preserving multi-page operands everywhere. EXPERIMENTS.md records the
// full-scale (1.0) runs.
const benchScale = 0.3

var (
	benchOnce     sync.Once
	benchDB       *dfdbm.DB
	benchQueries  []*dfdbm.Query
	benchProfiles []dfdbm.QueryProfile
	benchErr      error
)

func benchSetup(b *testing.B) (*dfdbm.DB, []*dfdbm.Query, []dfdbm.QueryProfile) {
	b.Helper()
	benchOnce.Do(func() {
		benchDB, benchQueries, benchErr = dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
			Seed:  benchSeed,
			Scale: benchScale,
		})
		if benchErr != nil {
			return
		}
		benchProfiles, benchErr = dfdbm.ProfileQueries(benchDB, benchQueries, dfdbm.DefaultHW().PageSize)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDB, benchQueries, benchProfiles
}

// BenchmarkFig31Granularity regenerates Figure 3.1: the ten-query
// benchmark on DIRECT under page-level versus relation-level
// granularity. The simulated execution time is reported as
// "sim-seconds" and the relation/page ratio of the pair as "rel/page".
func BenchmarkFig31Granularity(b *testing.B) {
	_, _, profiles := benchSetup(b)
	for _, procs := range []int{8, 32, 64} {
		for _, strat := range []dfdbm.Granularity{dfdbm.PageLevel, dfdbm.RelationLevel} {
			name := strat.String() + "/procs=" + itoa(procs)
			b.Run(name, func(b *testing.B) {
				var last dfdbm.DirectReport
				for i := 0; i < b.N; i++ {
					rep, err := dfdbm.SimulateDIRECT(dfdbm.DirectConfig{
						Processors: procs,
						Strategy:   strat,
					}, profiles)
					if err != nil {
						b.Fatal(err)
					}
					last = rep
				}
				b.ReportMetric(last.Elapsed.Seconds(), "sim-seconds")
			})
		}
	}
}

// BenchmarkTable33Traffic regenerates the Section 3.3 analysis on the
// functional engine: arbitration-network bytes at tuple-level versus
// page-level granularity for a benchmark join, with 1000-byte pages and
// 100-byte tuples.
func BenchmarkTable33Traffic(b *testing.B) {
	db, qs, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed: benchSeed, Scale: 0.1, PageSize: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	q := qs[2]
	bytesAt := map[dfdbm.Granularity]int64{}
	for _, g := range []dfdbm.Granularity{dfdbm.PageLevel, dfdbm.TupleLevel} {
		b.Run(g.String(), func(b *testing.B) {
			var arb int64
			for i := 0; i < b.N; i++ {
				res, err := db.Execute(q, dfdbm.EngineOptions{
					Granularity: g, Workers: 4, PageSize: 1000,
				})
				if err != nil {
					b.Fatal(err)
				}
				arb = res.Stats.ArbitrationBytes
			}
			bytesAt[g] = arb
			b.ReportMetric(float64(arb), "arb-bytes")
			if page := bytesAt[dfdbm.PageLevel]; page > 0 && g == dfdbm.TupleLevel {
				b.ReportMetric(float64(arb)/float64(page), "tuple/page-ratio")
			}
		})
	}
}

// BenchmarkFig42Bandwidth regenerates Figure 4.2's headline point: the
// average bandwidth demand of DIRECT with page-level granularity at the
// 50-IP configuration the 40 Mbps ring must carry.
func BenchmarkFig42Bandwidth(b *testing.B) {
	_, _, profiles := benchSetup(b)
	for _, procs := range []int{8, 50, 128} {
		b.Run("ips="+itoa(procs), func(b *testing.B) {
			var rep dfdbm.DirectReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = dfdbm.SimulateDIRECT(dfdbm.DirectConfig{Processors: procs}, profiles)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.ProcCacheMbps(), "ip-cache-mbps")
			b.ReportMetric(rep.CacheDiskMbps(), "cache-disk-mbps")
			b.ReportMetric(rep.ControlMbps(), "control-mbps")
		})
	}
}

// BenchmarkJoinAlgorithms regenerates the Section 2.1 contrast on real
// kernels — nested loops (the paper's multiprocessor algorithm) versus
// the equi-join hash kernel the engines now auto-select — measured on
// the host, plus the serial and data-flow executions around them.
func BenchmarkJoinAlgorithms(b *testing.B) {
	db, qs, _ := benchSetup(b)
	_ = qs
	outer, err := db.Get("r5")
	if err != nil {
		b.Fatal(err)
	}
	inner, err := db.Get("r11")
	if err != nil {
		b.Fatal(err)
	}
	cond := dfdbm.Equi("k3", "k3")
	q, err := db.Parse(`join(r5, r11, k3 = k3)`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("kernel/nested-loops", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dfdbm.NestedLoopsJoin(outer, inner, cond, "out"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kernel/hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dfdbm.HashJoin(outer, inner, cond, "out"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.ExecuteSerial(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dataflow-8w", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Execute(q, dfdbm.EngineOptions{Workers: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMachinePagePool measures the ring machine's multi-query run
// with and without the page pool; the simulated makespan is invariant,
// only host-side allocation behaviour differs (counters attached).
func BenchmarkMachinePagePool(b *testing.B) {
	db, qs, _ := benchSetup(b)
	hw := dfdbm.DefaultHW()
	hw.PageSize = 2048
	for _, noPool := range []bool{false, true} {
		name := "pooled"
		if noPool {
			name = "no-pool"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var res *dfdbm.MachineResults
			for i := 0; i < b.N; i++ {
				m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw, ICs: 16, IPs: 16, NoPagePool: noPool})
				if err != nil {
					b.Fatal(err)
				}
				for _, n := range []int{0, 2, 5} {
					if err := m.Submit(qs[n]); err != nil {
						b.Fatal(err)
					}
				}
				res, err = m.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.PagesRecycled), "pages-recycled")
			b.ReportMetric(float64(res.Stats.PoolHits), "pool-hits")
			b.ReportMetric(float64(res.Stats.HashProbes), "hash-probes")
			b.ReportMetric(res.Elapsed.Seconds(), "sim-seconds")
		})
	}
}

// BenchmarkRingNetworks regenerates the Section 4.1 loop comparison:
// mean message delay on DLCN, Newhall, and Pierce loops under the same
// variable-length load.
func BenchmarkRingNetworks(b *testing.B) {
	for _, kind := range []dfdbm.RingKind{dfdbm.DLCN, dfdbm.NewhallLoop, dfdbm.PierceLoop} {
		b.Run(kind.String(), func(b *testing.B) {
			var res dfdbm.RingResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = dfdbm.SimulateRing(dfdbm.RingConfig{
					Kind:     kind,
					Nodes:    16,
					Messages: 3000,
					MeanGap:  200 * time.Microsecond,
					MinLen:   64,
					MaxLen:   2048,
					Seed:     benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.MeanDelay.Microseconds()), "mean-delay-us")
		})
	}
}

// BenchmarkBroadcastJoin regenerates the Section 4.2 protocol run: a
// benchmark join through the ring machine's broadcast protocol.
func BenchmarkBroadcastJoin(b *testing.B) {
	db, qs, _ := benchSetup(b)
	hw := dfdbm.DefaultHW()
	hw.PageSize = 2048
	var stats dfdbm.MachineStats
	for i := 0; i < b.N; i++ {
		m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw, IPsPerInstruction: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Submit(qs[2]); err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		stats = res.Stats
	}
	b.ReportMetric(float64(stats.Broadcasts), "broadcasts")
	b.ReportMetric(float64(stats.RecoveryRequests), "recoveries")
}

// BenchmarkDirectRouting regenerates the Section 5 ablation: outer-ring
// bytes with and without IP-to-IP result routing.
func BenchmarkDirectRouting(b *testing.B) {
	db, _, _ := benchSetup(b)
	hw := dfdbm.DefaultHW()
	hw.PageSize = 2048
	q, err := db.Parse(`restrict(restrict(r1, val < 500), k1 < 50)`)
	if err != nil {
		b.Fatal(err)
	}
	for _, direct := range []bool{false, true} {
		name := "via-ic"
		if direct {
			name = "ip-to-ip"
		}
		b.Run(name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw, DirectRouting: direct})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Submit(q); err != nil {
					b.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.Stats.OuterRingBytes
			}
			b.ReportMetric(float64(bytes), "outer-ring-bytes")
		})
	}
}

// BenchmarkParallelProject regenerates the Section 5 open problem: the
// serial-controller duplicate elimination versus the hash-partitioned
// parallel algorithm, on the functional engine.
func BenchmarkParallelProject(b *testing.B) {
	db, _, _ := benchSetup(b)
	q, err := db.Parse(`project(r1, [k1, k2])`)
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []dfdbm.ProjectStrategy{dfdbm.ProjectSerialIC, dfdbm.ProjectPartitioned} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Execute(q, dfdbm.EngineOptions{Workers: 8, Project: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentQueries regenerates the Section 4.0 requirement:
// a multi-query mix through the machine with concurrency control.
func BenchmarkConcurrentQueries(b *testing.B) {
	db, qs, _ := benchSetup(b)
	hw := dfdbm.DefaultHW()
	hw.PageSize = 2048
	var res *dfdbm.MachineResults
	for i := 0; i < b.N; i++ {
		m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw, ICs: 16, IPs: 16})
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range qs[:5] {
			if err := m.Submit(q); err != nil {
				b.Fatal(err)
			}
		}
		res, err = m.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Elapsed.Seconds(), "sim-seconds")
	b.ReportMetric(res.IPUtilization, "ip-utilization")
}

// BenchmarkEngineGranularities measures the functional engine itself
// across the three granularities (host time; the simulated comparison
// is BenchmarkFig31Granularity).
func BenchmarkEngineGranularities(b *testing.B) {
	db, qs, _ := benchSetup(b)
	q := qs[5]
	for _, g := range []dfdbm.Granularity{dfdbm.RelationLevel, dfdbm.PageLevel, dfdbm.TupleLevel} {
		b.Run(g.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Execute(q, dfdbm.EngineOptions{Granularity: g, Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkPageSizeAblation regenerates the Section 3.3 page-size
// trade-off: arbitration traffic versus achievable concurrency.
func BenchmarkPageSizeAblation(b *testing.B) {
	db, qs, _ := benchSetup(b)
	for _, pageSize := range []int{2048, 16384, 262144} {
		b.Run("page="+itoa(pageSize), func(b *testing.B) {
			profiles, err := dfdbm.ProfileQueries(db, qs, pageSize)
			if err != nil {
				b.Fatal(err)
			}
			hw := dfdbm.DefaultHW()
			hw.PageSize = pageSize
			b.ResetTimer()
			var rep dfdbm.DirectReport
			for i := 0; i < b.N; i++ {
				rep, err = dfdbm.SimulateDIRECT(dfdbm.DirectConfig{Processors: 50, HW: hw}, profiles)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Elapsed.Seconds(), "sim-seconds")
			b.ReportMetric(float64(rep.Tasks), "tasks")
		})
	}
}

// BenchmarkMemoryCells regenerates the Section 3.2 configuration
// ablation: the effect of memory cells per processor.
func BenchmarkMemoryCells(b *testing.B) {
	_, _, profiles := benchSetup(b)
	for _, cells := range []int{1, 2, 4} {
		b.Run("cells="+itoa(cells), func(b *testing.B) {
			var rep dfdbm.DirectReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = dfdbm.SimulateDIRECT(dfdbm.DirectConfig{
					Processors: 16, CellsPerProcessor: cells,
				}, profiles)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Elapsed.Seconds(), "sim-seconds")
		})
	}
}
